"""Sketch <-> artifact conversion and config fingerprinting.

Persisted lake artifacts are only valid under the exact configuration that
produced them: a different MinHash family (seed / ``num_perm``), a different
trunk, or different weights all yield incomparable sketches/embeddings. We
therefore fingerprint the full configuration — :class:`SketchConfig`, the
model config, the frozen text-encoder settings, and a digest of the model
*weights* — and refuse to load artifacts whose fingerprint disagrees.

A :class:`TableSketch` round-trips through ``(arrays, meta)``: uint64 MinHash
signatures and float64 numeric statistics go into an npz archive (exact
binary round-trip), strings and enums into the JSON manifest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.search.backend import IndexSpec, normalize_index_spec
from repro.sketch.minhash import MinHash
from repro.sketch.numeric import NumericAccumulator, NumericalSketch, _PERCENTILES
from repro.sketch.pipeline import ColumnSketch, SketchConfig, TableSketch
from repro.table.schema import ColumnType

#: Bumped whenever the on-disk artifact layout changes shape.
#: v2: persisted vector index (index.npz + manifest spec), per-entry
#: disk_bytes, and the index-backend spec folded into the fingerprint.
#: (The sharded layout is additive — flat stores are unchanged, and a
#: sharded store is distinguished by its manifest's ``sharded`` flag plus
#: the shard count folded into the fingerprint — so v2 still covers it.)
FORMAT_VERSION = 2


class FingerprintMismatchError(RuntimeError):
    """Stored artifacts were produced under a different configuration."""

    def __init__(self, expected: str, found: str, where: str = "lake store"):
        super().__init__(
            f"{where} fingerprint mismatch: expected {expected!r}, found "
            f"{found!r} — the artifacts were built under a different "
            "sketch/model/index configuration (or an older artifact "
            "format) and must be re-ingested"
        )
        self.expected = expected
        self.found = found


# --------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------- #
def _weights_digest(model) -> str:
    """SHA-256 over the model's named parameters, order-independent."""
    digest = hashlib.sha256()
    for name, array in sorted(model.state_dict().items()):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())
    return digest.hexdigest()


def config_fingerprint(
    model_config,
    sbert=None,
    model=None,
    index_spec: "IndexSpec | str | None" = None,
    n_shards: int | None = None,
) -> str:
    """Stable hex fingerprint of everything embeddings depend on.

    ``model_config`` is a :class:`repro.core.config.TabSketchFMConfig` (which
    nests the :class:`SketchConfig`); ``sbert`` the optional frozen value
    encoder; ``model`` the (possibly fine-tuned) trunk, whose weights are
    digested so a fine-tune invalidates a pre-finetune lake; ``index_spec``
    the vector-index backend the lake's persisted index was built with
    (``None`` normalizes to the default exact backend), so exact- and
    HNSW-built stores never cross-load; ``n_shards`` the lake's shard
    partitioning (``None``/1 — the flat layout — is fingerprint-identical
    to pre-sharding stores, so existing lakes keep opening; any other
    count is folded in, so differently-sharded stores never cross-load
    without an explicit ``reshard``).
    """
    payload: dict = {
        "format": FORMAT_VERSION,
        "model_config": dataclasses.asdict(model_config),
        "sbert": None
        if sbert is None
        else {
            "dim": sbert.dim,
            "ngram": sbert.ngram,
            "use_ngrams": sbert.use_ngrams,
            "positional": sbert.positional,
        },
        "index": normalize_index_spec(index_spec).to_dict(),
    }
    if n_shards is not None and n_shards > 1:
        payload["shards"] = int(n_shards)
    if model is not None:
        payload["weights"] = _weights_digest(model)
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


# --------------------------------------------------------------------- #
# MinHash
# --------------------------------------------------------------------- #
def minhash_to_array(minhash: MinHash) -> np.ndarray:
    """The signature as a copyable uint64 array (exact round-trip form)."""
    return np.asarray(minhash.signature, dtype=np.uint64).copy()


def minhash_from_array(array: np.ndarray) -> MinHash:
    return MinHash(np.asarray(array, dtype=np.uint64).copy())


# --------------------------------------------------------------------- #
# NumericalSketch
# --------------------------------------------------------------------- #
#: unique_fraction, nan_fraction, avg_cell_width, 9 percentiles, mean, std,
#: min, max — the *raw* statistics (not the arcsinh model-input form), so a
#: loaded sketch reproduces ``to_vector()`` bit-for-bit.
NUMERIC_RECORD_DIM = 7 + len(_PERCENTILES)


def numeric_to_array(sketch: NumericalSketch) -> np.ndarray:
    return np.asarray(
        [
            sketch.unique_fraction,
            sketch.nan_fraction,
            sketch.avg_cell_width,
            *sketch.percentiles,
            sketch.mean,
            sketch.std,
            sketch.min_value,
            sketch.max_value,
        ],
        dtype=np.float64,
    )


def numeric_from_array(array: np.ndarray) -> NumericalSketch:
    array = np.asarray(array, dtype=np.float64)
    if array.shape != (NUMERIC_RECORD_DIM,):
        raise ValueError(
            f"numeric record must have shape ({NUMERIC_RECORD_DIM},), got {array.shape}"
        )
    n_pct = len(_PERCENTILES)
    return NumericalSketch(
        unique_fraction=float(array[0]),
        nan_fraction=float(array[1]),
        avg_cell_width=float(array[2]),
        percentiles=tuple(float(p) for p in array[3 : 3 + n_pct]),
        mean=float(array[3 + n_pct]),
        std=float(array[4 + n_pct]),
        min_value=float(array[5 + n_pct]),
        max_value=float(array[6 + n_pct]),
    )


# --------------------------------------------------------------------- #
# NumericAccumulator
# --------------------------------------------------------------------- #
#: Per-column scalar row of the accumulator arrays: n_rows, n_nonnull,
#: width_sum, is_numeric, n_numeric, total, total_sq, min_value, max_value,
#: sample_exact, n_distinct, distinct_exact. Counts and flags ride float64
#: losslessly (all are integers far below 2**53).
ACC_SCALAR_DIM = 12


def _pack_accumulators(
    sketches: "list[ColumnSketch]",
) -> "dict[str, np.ndarray] | None":
    accs = [c.numeric_acc for c in sketches]
    if any(a is None for a in accs):
        # Legacy sketch state (pre-live-tables archive round-tripping
        # through an update path) — omit the arrays rather than invent
        # approximate accumulators; appends to such tables are refused.
        return None
    scalars = np.asarray(
        [
            [
                a.n_rows,
                a.n_nonnull,
                a.width_sum,
                float(a.is_numeric),
                a.n_numeric,
                a.total,
                a.total_sq,
                a.min_value,
                a.max_value,
                float(a.sample_exact),
                a.n_distinct,
                float(a.distinct_exact),
            ]
            for a in accs
        ],
        dtype=np.float64,
    ).reshape(len(accs), ACC_SCALAR_DIM)
    return {
        "acc_scalars": scalars,
        "acc_sample": np.concatenate([a.sample for a in accs])
        if accs
        else np.zeros(0, dtype=np.float64),
        "acc_sample_len": np.asarray([len(a.sample) for a in accs], dtype=np.int64),
        "acc_distinct": np.concatenate([a.distinct for a in accs])
        if accs
        else np.zeros(0, dtype=np.uint64),
        "acc_distinct_len": np.asarray(
            [len(a.distinct) for a in accs], dtype=np.int64
        ),
    }


def _unpack_accumulator(arrays: dict[str, np.ndarray], i: int) -> NumericAccumulator:
    row = arrays["acc_scalars"][i]
    sample_lens = np.asarray(arrays["acc_sample_len"], dtype=np.int64)
    distinct_lens = np.asarray(arrays["acc_distinct_len"], dtype=np.int64)
    s0 = int(sample_lens[:i].sum())
    d0 = int(distinct_lens[:i].sum())
    sample = np.asarray(
        arrays["acc_sample"][s0 : s0 + int(sample_lens[i])], dtype=np.float64
    ).copy()
    distinct = np.asarray(
        arrays["acc_distinct"][d0 : d0 + int(distinct_lens[i])], dtype=np.uint64
    ).copy()
    return NumericAccumulator(
        n_rows=int(row[0]),
        n_nonnull=int(row[1]),
        width_sum=int(row[2]),
        is_numeric=bool(row[3]),
        n_numeric=int(row[4]),
        total=float(row[5]),
        total_sq=float(row[6]),
        min_value=float(row[7]),
        max_value=float(row[8]),
        sample=sample,
        sample_exact=bool(row[9]),
        n_distinct=int(row[10]),
        distinct=distinct,
        distinct_exact=bool(row[11]),
    )


# --------------------------------------------------------------------- #
# TableSketch
# --------------------------------------------------------------------- #
def pack_table_sketch(sketch: TableSketch) -> tuple[dict[str, np.ndarray], dict]:
    """Split a :class:`TableSketch` into npz arrays + JSON-safe metadata."""
    arrays = {
        "snapshot_sig": minhash_to_array(sketch.snapshot),
        "values_sig": np.stack(
            [minhash_to_array(c.values_minhash) for c in sketch.column_sketches]
        )
        if sketch.column_sketches
        else np.zeros((0, sketch.config.num_perm), dtype=np.uint64),
        "words_sig": np.stack(
            [minhash_to_array(c.words_minhash) for c in sketch.column_sketches]
        )
        if sketch.column_sketches
        else np.zeros((0, sketch.config.num_perm), dtype=np.uint64),
        "numeric_stats": np.stack(
            [numeric_to_array(c.numeric) for c in sketch.column_sketches]
        )
        if sketch.column_sketches
        else np.zeros((0, NUMERIC_RECORD_DIM), dtype=np.float64),
        "n_values": np.asarray(
            [c.n_values for c in sketch.column_sketches], dtype=np.int64
        ),
        "ctypes": np.asarray(
            [int(c.ctype) for c in sketch.column_sketches], dtype=np.int64
        ),
    }
    acc_arrays = _pack_accumulators(sketch.column_sketches)
    if acc_arrays is not None:
        arrays.update(acc_arrays)
    meta = {
        "table_name": sketch.table_name,
        "description": sketch.description,
        "columns": [c.name for c in sketch.column_sketches],
        "sketch_config": dataclasses.asdict(sketch.config),
    }
    return arrays, meta


def unpack_table_sketch(arrays: dict[str, np.ndarray], meta: dict) -> TableSketch:
    """Rebuild the exact :class:`TableSketch` from :func:`pack_table_sketch`
    output."""
    config = SketchConfig(**meta["sketch_config"])
    columns = meta["columns"]
    has_acc = "acc_scalars" in arrays  # absent in pre-live-tables archives
    column_sketches = [
        ColumnSketch(
            name=name,
            ctype=ColumnType(int(arrays["ctypes"][i])),
            values_minhash=minhash_from_array(arrays["values_sig"][i]),
            words_minhash=minhash_from_array(arrays["words_sig"][i]),
            numeric=numeric_from_array(arrays["numeric_stats"][i]),
            n_values=int(arrays["n_values"][i]),
            numeric_acc=_unpack_accumulator(arrays, i) if has_acc else None,
        )
        for i, name in enumerate(columns)
    ]
    return TableSketch(
        table_name=meta["table_name"],
        description=meta["description"],
        column_sketches=column_sketches,
        snapshot=minhash_from_array(arrays["snapshot_sig"]),
        config=config,
    )
