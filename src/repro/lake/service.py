"""`LakeService` — the thread-safe query facade over a `LakeCatalog`.

Implements the paper's three discovery workloads against a standing lake:

- ``join``  — closest-single-column ranking (§IV-C1), queried per column;
- ``union`` / ``subset`` — the Fig. 6 NEARTABLES/RANK1/RANK2 procedure over
  all of the query table's columns (§IV-C2/C3).

Every question and answer travels through the versioned Discovery API
(:mod:`repro.lake.api`): :meth:`LakeService.discover` takes a
:class:`DiscoveryRequest` and returns a :class:`DiscoveryResult` — ranked
:class:`~repro.lake.api.Hit` s carrying scores and per-column evidence, a
sketch/embed/index timing breakdown, and cache/shard diagnostics. The
pre-API ``query``/``query_batch`` signatures remain as thin shims (bare
``list[str]`` out, legacy ``KeyError``/``ValueError`` on failure) so old
call sites stay green; in-process and HTTP callers
(:mod:`repro.lake.server` / :mod:`repro.lake.client`) are interchangeable
because both speak exactly this schema.

Query tables may be catalog members (their stored vectors are reused — zero
trunk work) or external :class:`~repro.table.schema.Table` payloads, whose
sketch+embeddings are computed once and kept in a content-addressed LRU
cache. ``discover_batch`` embeds *all* uncached external query tables of a
batch in one batched :class:`~repro.core.engine.EmbeddingEngine` pass —
``ceil(distinct / batch_size)`` trunk forwards, identical digests deduped —
instead of one serial forward per query. A single re-entrant lock
serializes catalog mutations against reads; queries hold it only around
shared-state access, which is enough for correctness with the pure-numpy
index.

Every query runs under a ``lake.discover`` span (:mod:`repro.obs`):
``lake.sketch`` / ``lake.embed`` / ``lake.index`` children carry the
stage timings (batched queries attach synthetic amortized children), and
the response's :class:`~repro.lake.api.Timings` is a pure projection of
that span tree. Query counters/latency histograms, cache hit/miss/
eviction counters, and a top-N :class:`~repro.obs.SlowQueryLog` (with
full span breakdowns) feed ``GET /v1/metrics`` / ``/v1/slow_queries``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Sequence

from repro.lake.api import (
    API_VERSION,
    QUERY_MODES,
    ColumnMatch,
    DiscoveryError,
    DiscoveryRequest,
    DiscoveryResult,
    Hit,
    Timings,
    bad_request,
    join_score,
    table_score,
)
from repro import obs
from repro.core.engine import sketch_corpus
from repro.lake.catalog import LakeCatalog
from repro.search.backend import stable_shard
from repro.search.tables import TableMatch
from repro.sketch.pipeline import sketch_table
from repro.table.schema import Table

_QUERIES_TOTAL = obs.counter(
    "lake_queries_total", "Discovery queries answered, by mode", ("mode",)
)
_QUERY_MS = obs.histogram(
    "lake_query_duration_ms",
    "End-to-end discover() latency in milliseconds, by mode",
    ("mode",),
)
_CACHE_HITS = obs.counter(
    "lake_cache_hits_total", "Query-embedding LRU cache hits"
)
_CACHE_MISSES = obs.counter(
    "lake_cache_misses_total", "Query-embedding LRU cache misses"
)
_CACHE_EVICTIONS = obs.counter(
    "lake_cache_evictions_total", "Query-embedding LRU cache evictions"
)
#: Label children resolved once — the hot path must not pay a labels()
#: lookup per query for the three fixed modes.
_QUERIES_BY_MODE = {
    mode: _QUERIES_TOTAL.labels(mode=mode) for mode in QUERY_MODES
}
_QUERY_MS_BY_MODE = {mode: _QUERY_MS.labels(mode=mode) for mode in QUERY_MODES}


def table_digest(table: Table) -> str:
    """Content-addressed cache key: name, description, schema, all cells."""
    digest = hashlib.sha256()
    digest.update(table.name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(table.description.encode("utf-8"))
    for column in table.columns:
        digest.update(b"\x01")
        digest.update(column.name.encode("utf-8"))
        for value in column.values:
            digest.update(b"\x02")
            digest.update(value.encode("utf-8"))
    return digest.hexdigest()


class _LruCache:
    """Tiny LRU for (digest -> ordered column-vector pairs)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: OrderedDict[str, list] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str):
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            _CACHE_HITS.inc()
            return self._data[key]
        self.misses += 1
        _CACHE_MISSES.inc()
        return None

    def put(self, key: str, value) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1
            _CACHE_EVICTIONS.inc()

    def __contains__(self, key: str) -> bool:
        """Non-counting membership probe (batch planning must not skew the
        hit/miss statistics the observable ``stats()`` reports)."""
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


class LakeService:
    """Batched join/union/subset queries over a standing lake."""

    def __init__(self, catalog: LakeCatalog, cache_size: int = 128):
        self.catalog = catalog
        self._lock = threading.RLock()
        self._cache = _LruCache(cache_size)
        self.query_count = 0
        #: Tables ingested through this service (adds + updates).
        self.ingest_count = 0
        self.slow_log = obs.SlowQueryLog()
        self._started_at = time.time()

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str | None:
        """The attached store's configuration fingerprint (None storeless).

        Requests carrying ``fingerprint=`` are checked against this — the
        remote caller's analogue of the store's open-time guard.
        """
        store = self.catalog.store
        return store.fingerprint if store is not None else None

    def _check_fingerprint(self, request: DiscoveryRequest) -> None:
        if request.fingerprint is None:
            return
        actual = self.fingerprint()
        if request.fingerprint != actual:
            raise DiscoveryError(
                "fingerprint-mismatch",
                f"request pinned lake fingerprint {request.fingerprint!r} "
                f"but this service serves {actual!r} — the lake was built "
                "under a different configuration",
            )

    # ------------------------------------------------------------------ #
    def _resolve(
        self, request: DiscoveryRequest
    ) -> tuple[list, str | None, dict]:
        """``(ordered (column, vector) pairs, exclude_table, diagnostics)``.

        Catalog members resolve to their stored vectors; external payloads
        go through the LRU-cached embedding path. An external table whose
        name shadows a catalog member is still excluded from its own
        results (leave-one-out, as in the paper's benchmarks).

        The trunk runs *outside* the lock: only cache/catalog lookups are
        guarded, so concurrent external-table queries embed in parallel.
        (Two threads missing on the same digest may both embed it — the
        standard benign cache stampede; results are deterministic.)
        """
        if request.table is not None:
            with self._lock:
                if request.table not in self.catalog:
                    raise DiscoveryError(
                        "not-found",
                        f"query table {request.table!r} not in catalog",
                    )
                record = self.catalog.records[request.table]
                return (
                    record.vector_pairs(),
                    request.table,
                    {"member": True, "cache_hit": None},
                )
        query = request.payload
        key = table_digest(query)
        with self._lock:
            pairs = self._cache.get(key)
        diag: dict = {"member": False, "cache_hit": pairs is not None}
        if pairs is None:
            # The stage spans attach to the caller's ``lake.discover`` root
            # through the contextvar — the Timings projection reads them
            # back as ``child_sum("lake.sketch")`` / ``("lake.embed")``.
            with obs.span("lake.sketch"):
                table_sketch = sketch_table(
                    query, self.catalog.sketch_config, self.catalog._hasher
                )
            with obs.span("lake.embed"):
                pairs = self.catalog.column_vector_pairs(query, table_sketch)
            with self._lock:
                self._cache.put(key, pairs)
        with self._lock:
            exclude = query.name if query.name in self.catalog else None
        return pairs, exclude, diag

    # ------------------------------------------------------------------ #
    def _search(
        self, request: DiscoveryRequest, pairs: list, exclude: str | None
    ) -> list[TableMatch]:
        """Run the mode's ranking under the lock; full (untruncated)
        candidate ranking so post-filters never starve the top-k."""
        searcher = self.catalog.searcher
        if not pairs:
            return []
        if request.mode == "join":
            if request.column is not None:
                by_name = dict(pairs)
                if request.column not in by_name:
                    raise DiscoveryError(
                        "not-found",
                        f"query table has no column {request.column!r}",
                    )
                named = [(request.column, by_name[request.column])]
            else:
                named = pairs
            return searcher.join_tables_scored(
                named, request.k, exclude_table=exclude
            )
        return searcher.near_tables_scored(
            pairs, request.k, exclude_table=exclude
        )

    def _build_hits(
        self, request: DiscoveryRequest, matches: list[TableMatch]
    ) -> tuple[tuple[Hit, ...], int]:
        """Score, filter (min_score / shards), and truncate to ``k``."""
        n_shards = self.catalog.n_shards
        if request.shards is not None:
            out_of_range = [s for s in request.shards if s >= n_shards]
            if out_of_range:
                raise bad_request(
                    f"shard filter {out_of_range} out of range for a "
                    f"{n_shards}-shard lake"
                )
        hits: list[Hit] = []
        dropped = 0
        for match in matches:
            if request.mode == "join":
                score = join_score(match.distance_sum)
            else:
                score = table_score(match.n_matched, match.distance_sum)
            if request.min_score is not None and score < request.min_score:
                dropped += 1
                continue
            if request.shards is not None and (
                stable_shard(match.table, n_shards) not in request.shards
            ):
                dropped += 1
                continue
            record = self.catalog.records.get(match.table)
            hits.append(
                Hit(
                    table=match.table,
                    score=score,
                    n_matched_columns=match.n_matched,
                    distance_sum=match.distance_sum,
                    matches=tuple(
                        ColumnMatch(query_column=q, table_column=c, distance=d)
                        for q, c, d in match.matches
                    ),
                    version=record.version if record is not None else None,
                    stale=record.embedding_stale if record is not None else None,
                )
            )
            if len(hits) >= request.k:
                break
        return tuple(hits), dropped

    def discover(
        self,
        request: DiscoveryRequest,
        _resolved: tuple[list, str | None, dict] | None = None,
    ) -> DiscoveryResult:
        """Answer one :class:`DiscoveryRequest` with a typed, scored result.

        The single entry point every surface shares: the legacy shims, the
        CLI, and the HTTP server all route here, so a request answered
        in-process and the same request answered over the wire return the
        same ranked ``(table, score)`` hits.

        The whole call runs under a ``lake.discover`` span whose children
        (``lake.sketch`` / ``lake.embed`` / ``lake.index``) carry the
        stage timings; the response's :class:`Timings` is a projection of
        that span tree (same fields as the old ``perf_counter`` pairs —
        ``lake.index`` wraps the index search only, not hit building).
        """
        request = request.validated()
        with obs.span("lake.discover", mode=request.mode) as root:
            self._check_fingerprint(request)
            refreshed: list[str] = []
            if not request.allow_stale:
                # Lazy re-embed: appended tables serve stale vectors until
                # the first query that won't tolerate them, which pays one
                # batched embedding pass for *only* the stale tables.
                with self._lock:
                    if self.catalog.stale_tables():
                        refreshed = self.catalog.refresh_stale()
            if request.pin_version is not None:
                with self._lock:
                    pinned = self.catalog.records.get(request.table)
                    if pinned is not None:
                        if pinned.version != request.pin_version:
                            raise DiscoveryError(
                                "version-conflict",
                                f"table {request.table!r} is at version "
                                f"{pinned.version}, not pinned version "
                                f"{request.pin_version}",
                            )
                        if pinned.embedding_stale:
                            raise DiscoveryError(
                                "version-conflict",
                                f"table {request.table!r} matches pinned "
                                f"version {request.pin_version} but its "
                                "embedding is stale; retry without "
                                "allow_stale to refresh it first",
                            )
            pairs, exclude, diag = (
                _resolved if _resolved is not None else self._resolve(request)
            )
            # Batched resolution happened outside this trace: attach each
            # query's amortized share of the one batched pass as synthetic
            # children, so the projection below stays uniform.
            if "sketch_ms" in diag:
                root.add_child_duration(
                    "lake.sketch", diag["sketch_ms"], amortized=True
                )
            if "embed_ms" in diag:
                root.add_child_duration(
                    "lake.embed", diag["embed_ms"], amortized=True
                )
            with self._lock:
                self.query_count += 1
                with obs.span("lake.index"):
                    matches = self._search(request, pairs, exclude)
                hits, dropped = self._build_hits(request, matches)
                diagnostics = {
                    "member": diag.get("member", False),
                    "cache_hit": diag.get("cache_hit"),
                    "excluded": exclude,
                    "backend": self.catalog.index_spec.canonical(),
                    "n_shards": self.catalog.n_shards,
                    "candidates": len(matches),
                    "filtered": dropped,
                }
                if diag.get("batched"):
                    diagnostics["batched"] = diag["batched"]
                if refreshed:
                    diagnostics["refreshed"] = len(refreshed)
            request_id = obs.request_id()
            if request_id is not None:
                diagnostics["request_id"] = request_id
        timings = Timings(
            sketch_ms=root.child_sum("lake.sketch"),
            embed_ms=root.child_sum("lake.embed"),
            index_ms=root.child_sum("lake.index"),
            total_ms=root.duration_ms,
        )
        result = DiscoveryResult(
            version=API_VERSION,
            mode=request.mode,
            k=request.k,
            query=request.query_name,
            hits=hits,
            timings=timings,
            diagnostics=diagnostics,
        )
        self._observe_query(request, root, timings, diagnostics)
        return result

    def _observe_query(
        self,
        request: DiscoveryRequest,
        root: obs.Span,
        timings: Timings,
        diagnostics: dict,
    ) -> None:
        """Record one answered query into metrics + the slow-query log.

        The histogram observes the *exact* ``timings.total_ms`` the
        response carries, so the exposition's ``lake_query_duration_ms``
        sum reconciles with summed per-response totals by construction.
        """
        if not obs.enabled():
            return
        mode = request.mode
        counter = _QUERIES_BY_MODE.get(mode) or _QUERIES_TOTAL.labels(mode=mode)
        histogram = _QUERY_MS_BY_MODE.get(mode) or _QUERY_MS.labels(mode=mode)
        counter.inc()
        histogram.observe(timings.total_ms)
        # The span-tree dict is the expensive part of an entry; only build
        # it for queries slow enough to displace the current top-N.
        if not self.slow_log.would_record(timings.total_ms):
            return
        self.slow_log.record(
            {
                "query": request.query_name,
                "mode": request.mode,
                "k": request.k,
                "member": diagnostics.get("member", False),
                "cache_hit": diagnostics.get("cache_hit"),
                "request_id": diagnostics.get("request_id"),
                "total_ms": timings.total_ms,
                "timings": timings.to_dict(),
                "spans": root.to_dict(),
            }
        )

    def discover_batch(
        self, requests: Sequence[DiscoveryRequest]
    ) -> list[DiscoveryResult]:
        """Answer many requests; uncached external payloads embed together.

        All distinct-by-digest, not-yet-cached external query tables are
        sketched and pushed through **one**
        :meth:`~repro.lake.catalog.LakeCatalog.column_vector_pairs_many`
        call — ``ceil(distinct / batch_size)`` trunk forwards for the whole
        batch (duplicate payloads embed once), then every request is
        answered from the precomputed vectors. Member-name queries never
        touch the trunk at all.

        The batch is all-or-nothing: the first failing request raises and
        no results are returned (the embedding cache stays warm). To keep
        the expensive batched pass from being paid and discarded, the
        cheap failures — malformed requests, fingerprint pins, unknown
        member names — are all checked *before* any sketching or
        embedding.
        """
        requests = [request.validated() for request in requests]
        with self._lock:
            for request in requests:
                self._check_fingerprint(request)
                if request.table is not None and request.table not in self.catalog:
                    raise DiscoveryError(
                        "not-found",
                        f"query table {request.table!r} not in catalog",
                    )
        digests = [
            table_digest(request.payload) if request.payload is not None else None
            for request in requests
        ]
        todo: dict[str, Table] = {}
        with self._lock:
            for request, digest in zip(requests, digests):
                if digest is None or digest in todo:
                    continue
                if digest in self._cache:
                    continue
                todo[digest] = request.payload
        precomputed: dict[str, list] = {}
        shared_diag: dict[str, dict] = {}
        if todo:
            tables = list(todo.values())
            with obs.span("lake.sketch_batch", tables=len(tables)) as sketching:
                sketches = sketch_corpus(
                    tables, self.catalog.sketch_config, self.catalog._hasher
                )
            with obs.span("lake.embed_batch", tables=len(tables)) as embedding:
                pairs_list = self.catalog.column_vector_pairs_many(
                    tables, sketches
                )
            # Amortized per-query share of the one batched pass; each
            # request's ``lake.discover`` root re-attaches its share as a
            # synthetic child (see :meth:`discover`).
            sketch_ms = sketching.duration_ms / len(tables)
            embed_ms = embedding.duration_ms / len(tables)
            with self._lock:
                for digest, pairs in zip(todo, pairs_list):
                    self._cache.put(digest, pairs)
                    self._cache.misses += 1  # it *was* a miss, batched or not
                    _CACHE_MISSES.inc()
                    precomputed[digest] = pairs
                    shared_diag[digest] = {
                        "member": False,
                        "cache_hit": False,
                        "batched": len(tables),
                        "sketch_ms": sketch_ms,
                        "embed_ms": embed_ms,
                    }
        results: list[DiscoveryResult] = []
        for request, digest in zip(requests, digests):
            if digest is not None and digest in precomputed:
                with self._lock:
                    exclude = (
                        request.payload.name
                        if request.payload.name in self.catalog
                        else None
                    )
                resolved = (precomputed[digest], exclude, shared_diag[digest])
                results.append(self.discover(request, _resolved=resolved))
            else:
                results.append(self.discover(request))
        return results

    # ------------------------------------------------------------------ #
    # Legacy shims — bare table-name results, pre-API exception types.
    # ------------------------------------------------------------------ #
    def _legacy_request(
        self,
        query: str | Table,
        mode: str,
        k: int,
        column: str | None = None,
    ) -> DiscoveryRequest:
        # The pre-API signature only ever consulted ``column`` in join
        # mode; keep ignoring it elsewhere instead of surfacing the
        # stricter API-level rejection to old call sites.
        if mode != "join":
            column = None
        if isinstance(query, Table):
            return DiscoveryRequest(mode=mode, k=k, payload=query, column=column)
        return DiscoveryRequest(mode=mode, k=k, table=query, column=column)

    def query(
        self,
        query: "str | Table | DiscoveryRequest",
        mode: str = "union",
        k: int = 10,
        column: str | None = None,
    ) -> "list[str] | DiscoveryResult":
        """Top-``k`` lake tables for one query table (or member name).

        Passed a :class:`DiscoveryRequest`, this *is* :meth:`discover` and
        returns the full typed :class:`DiscoveryResult`. The legacy
        signature (member name / ``Table`` plus ``mode``/``k``/``column``)
        returns bare ranked names and re-raises failures as the pre-API
        ``KeyError``/``ValueError`` — same ranking, scores dropped at the
        last moment instead of inside the stack.
        """
        if isinstance(query, DiscoveryRequest):
            return self.discover(query)
        try:
            result = self.discover(self._legacy_request(query, mode, k, column))
        except DiscoveryError as exc:
            raise exc.as_legacy() from None
        return result.tables()

    def query_batch(
        self,
        queries: "Sequence[str | Table | DiscoveryRequest]",
        mode: str = "union",
        k: int = 10,
    ) -> "list[list[str]] | list[DiscoveryResult]":
        """Answer many queries through one batched embedding pass.

        A list of :class:`DiscoveryRequest` s returns typed results
        (:meth:`discover_batch`); the legacy name/``Table`` form returns
        bare ranked names with legacy exception types.
        """
        if all(isinstance(query, DiscoveryRequest) for query in queries):
            return self.discover_batch(list(queries))
        try:
            results = self.discover_batch(
                [
                    query
                    if isinstance(query, DiscoveryRequest)
                    else self._legacy_request(query, mode, k)
                    for query in queries
                ]
            )
        except DiscoveryError as exc:
            raise exc.as_legacy() from None
        return [result.tables() for result in results]

    # ------------------------------------------------------------------ #
    def add_table(self, table: Table):
        with self._lock:
            record = self.catalog.add_table(table)
            self.ingest_count += 1
            return record

    def add_tables(
        self,
        tables: dict[str, Table],
        batch_size: int | None = None,
        sketch_workers: int | None = None,
        ingest_workers: int | None = None,
        ingest_procs: int | None = None,
    ):
        """Bulk ingest through the parallel pipeline:
        ``ceil(N / batch_size)`` trunk forwards for N new tables, fanned
        across ``ingest_workers`` threads (or ``ingest_procs`` spawn-pool
        processes for the embedding stage) along with sketching and the
        per-shard store writes."""
        with self._lock:
            records = self.catalog.add_tables(
                tables,
                batch_size=batch_size,
                sketch_workers=sketch_workers,
                ingest_workers=ingest_workers,
                ingest_procs=ingest_procs,
            )
            self.ingest_count += len(records)
            return records

    def remove_table(self, name: str) -> bool:
        with self._lock:
            return self.catalog.remove_table(name)

    def update_table(self, table: Table):
        with self._lock:
            record = self.catalog.update_table(table)
            self.ingest_count += 1
            return record

    def append_rows(self, name: str, rows):
        """Append rows to a catalog member; sketches merge in O(delta).

        The table's embedding goes stale until the next strict query (or
        an explicit refresh) re-embeds it. Unknown names surface as the
        API's typed ``not-found`` so every transport maps them to 404.
        """
        with self._lock:
            try:
                return self.catalog.append_rows(name, rows)
            except KeyError:
                raise DiscoveryError(
                    "not-found", f"table {name!r} not in catalog"
                ) from None

    def refresh_stale(self, names: "list[str] | None" = None) -> list[str]:
        """Eagerly re-embed stale tables (all of them, or just ``names``).

        The operator/driver-facing twin of the lazy refresh a strict query
        pays implicitly: one batched engine pass for every stale table,
        persisted. Returns the refreshed names (names that are unknown or
        not stale are skipped, mirroring the catalog's semantics).
        """
        with self._lock:
            return self.catalog.refresh_stale(names)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            stats = self.catalog.stats()
            store_stats = (
                self.catalog.store.stats()
                if self.catalog.store is not None
                else None
            )
            n_shards = self.catalog.n_shards
            if n_shards == 1:
                shard_tables = [len(self.catalog.records)]
            elif store_stats is not None and "shard_tables" in store_stats:
                # The sharded store's manifests already know their routing
                # — no per-record hashing under the service lock.
                shard_tables = list(store_stats["shard_tables"])
            else:
                shard_tables = [0] * n_shards
                for name in self.catalog.records:
                    shard_tables[stable_shard(name, n_shards)] += 1
            hits, misses = self._cache.hits, self._cache.misses
            lookups = hits + misses
            stats.update(
                {
                    "api_version": API_VERSION,
                    "fingerprint": self.fingerprint(),
                    "uptime_s": time.time() - self._started_at,
                    "queries_served": self.query_count,
                    "queries_total": self.query_count,
                    "ingests_total": self.ingest_count,
                    "cache_entries": len(self._cache),
                    "cache_hits": hits,
                    "cache_misses": misses,
                    "cache_evictions": self._cache.evictions,
                    "cache_hit_rate": (hits / lookups) if lookups else None,
                    "shard_tables": shard_tables,
                }
            )
            if store_stats is not None:
                stats["store"] = store_stats
            return stats
