"""`LakeService` — the thread-safe query facade over a `LakeCatalog`.

Implements the paper's three discovery workloads against a standing lake:

- ``join``  — closest-single-column ranking (§IV-C1), queried per column;
- ``union`` / ``subset`` — the Fig. 6 NEARTABLES/RANK1/RANK2 procedure over
  all of the query table's columns (§IV-C2/C3).

Query tables may be catalog members (their stored vectors are reused — zero
trunk work) or external :class:`~repro.table.schema.Table` objects, whose
sketch+embeddings are computed once and kept in a content-addressed LRU
cache, so repeated and batched queries pay the trunk cost once. A single
re-entrant lock serializes catalog mutations against reads; queries hold it
only around shared-state access, which is enough for correctness with the
pure-numpy index.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.lake.catalog import LakeCatalog
from repro.sketch.pipeline import sketch_table
from repro.table.schema import Table

QUERY_MODES = ("join", "union", "subset")


def table_digest(table: Table) -> str:
    """Content-addressed cache key: name, description, schema, all cells."""
    digest = hashlib.sha256()
    digest.update(table.name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(table.description.encode("utf-8"))
    for column in table.columns:
        digest.update(b"\x01")
        digest.update(column.name.encode("utf-8"))
        for value in column.values:
            digest.update(b"\x02")
            digest.update(value.encode("utf-8"))
    return digest.hexdigest()


class _LruCache:
    """Tiny LRU for (digest -> ordered column-vector pairs)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: OrderedDict[str, list] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: str, value) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class LakeService:
    """Batched join/union/subset queries over a standing lake."""

    def __init__(self, catalog: LakeCatalog, cache_size: int = 128):
        self.catalog = catalog
        self._lock = threading.RLock()
        self._cache = _LruCache(cache_size)
        self.query_count = 0

    # ------------------------------------------------------------------ #
    def _resolve_vectors(
        self, query: str | Table
    ) -> tuple[list[tuple[str, np.ndarray]], str | None]:
        """``(ordered (column, vector) pairs, exclude_table)`` for a query.

        Catalog members resolve to their stored vectors; external tables go
        through the LRU-cached embedding path. An external table whose name
        shadows a catalog member is still excluded from its own results
        (leave-one-out, as in the paper's benchmarks).

        The trunk runs *outside* the lock: only cache/catalog lookups are
        guarded, so concurrent external-table queries embed in parallel.
        (Two threads missing on the same digest may both embed it — the
        standard benign cache stampede; results are deterministic.)
        """
        if isinstance(query, str):
            with self._lock:
                if query not in self.catalog:
                    raise KeyError(f"query table {query!r} not in catalog")
                record = self.catalog.records[query]
                return record.vector_pairs(), query
        key = table_digest(query)
        with self._lock:
            pairs = self._cache.get(key)
        if pairs is None:
            table_sketch = sketch_table(
                query, self.catalog.sketch_config, self.catalog._hasher
            )
            pairs = self.catalog.column_vector_pairs(query, table_sketch)
            with self._lock:
                self._cache.put(key, pairs)
        with self._lock:
            exclude = query.name if query.name in self.catalog else None
        return pairs, exclude

    # ------------------------------------------------------------------ #
    def query(
        self,
        query: str | Table,
        mode: str = "union",
        k: int = 10,
        column: str | None = None,
    ) -> list[str]:
        """Top-``k`` lake tables for one query table (or member name).

        ``join`` mode searches by one column (``column=`` names it; default
        is the paper's every-column union of per-column join results ranked
        by best distance). ``union``/``subset`` run the Fig. 6 ranking.
        """
        if mode not in QUERY_MODES:
            raise ValueError(f"unknown query mode {mode!r}; want one of {QUERY_MODES}")
        pairs, exclude = self._resolve_vectors(query)
        with self._lock:
            self.query_count += 1
            if not pairs:
                return []
            searcher = self.catalog.searcher
            if mode == "join":
                if column is not None:
                    by_name = dict(pairs)
                    if column not in by_name:
                        raise KeyError(f"query table has no column {column!r}")
                    return searcher.search_by_column(
                        by_name[column], k, exclude_table=exclude
                    )
                # No column marked: best single-column match per lake
                # table, over one batched query_many call.
                best: dict[str, float] = {}
                matrix = np.stack([vector for _, vector in pairs])
                for nearest in searcher.column_near_tables_many(
                    matrix, k, exclude_table=exclude
                ):
                    for table, distance in nearest.items():
                        if table not in best or distance < best[table]:
                            best[table] = distance
                ranked = sorted(best.items(), key=lambda item: item[1])
                return [table for table, _ in ranked[:k]]
            vectors = np.stack([vector for _, vector in pairs])
            return searcher.search_tables(vectors, k, exclude_table=exclude)

    def query_batch(
        self,
        queries: list[str | Table],
        mode: str = "union",
        k: int = 10,
    ) -> list[list[str]]:
        """Answer many queries; the embedding cache is shared across the
        batch."""
        return [self.query(query, mode=mode, k=k) for query in queries]

    # ------------------------------------------------------------------ #
    def add_table(self, table: Table):
        with self._lock:
            return self.catalog.add_table(table)

    def add_tables(
        self,
        tables: dict[str, Table],
        batch_size: int | None = None,
        sketch_workers: int | None = None,
        ingest_workers: int | None = None,
    ):
        """Bulk ingest through the parallel pipeline:
        ``ceil(N / batch_size)`` trunk forwards for N new tables, fanned
        across ``ingest_workers`` threads along with sketching and the
        per-shard store writes."""
        with self._lock:
            return self.catalog.add_tables(
                tables,
                batch_size=batch_size,
                sketch_workers=sketch_workers,
                ingest_workers=ingest_workers,
            )

    def remove_table(self, name: str) -> bool:
        with self._lock:
            return self.catalog.remove_table(name)

    def update_table(self, table: Table):
        with self._lock:
            return self.catalog.update_table(table)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            stats = self.catalog.stats()
            stats.update(
                {
                    "queries_served": self.query_count,
                    "cache_entries": len(self._cache),
                    "cache_hits": self._cache.hits,
                    "cache_misses": self._cache.misses,
                }
            )
            if self.catalog.store is not None:
                stats["store"] = self.catalog.store.stats()
            return stats
