"""Shared utilities: stable hashing, seeded RNG management, small I/O helpers.

These utilities underpin the sketching stack (which needs *stable* 64-bit
hashes so that sketches are reproducible across processes) and every
stochastic component (which needs explicit, seedable RNG streams).
"""

from repro.utils.hashing import (
    HASH_PRIME,
    combine_hashes,
    hash_bytes,
    hash_string,
    hash_strings,
)
from repro.utils.rng import RngStream, spawn_rng
from repro.utils.io import ensure_dir, read_json, write_json

__all__ = [
    "HASH_PRIME",
    "combine_hashes",
    "hash_bytes",
    "hash_string",
    "hash_strings",
    "RngStream",
    "spawn_rng",
    "ensure_dir",
    "read_json",
    "write_json",
]
