"""Stable 64-bit string hashing.

Python's built-in ``hash`` is salted per process (PYTHONHASHSEED), which would
make MinHash sketches non-reproducible between runs. We therefore implement a
fixed FNV-1a 64-bit hash over UTF-8 bytes, plus helpers to hash batches of
strings into numpy arrays. All sketching code routes through these functions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

# Mersenne prime 2^61 - 1: the classic modulus for universal hashing.  Using a
# prime modulus keeps (a * x + b) % p a proper universal hash family.
HASH_PRIME = (1 << 61) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def hash_bytes(data: bytes) -> int:
    """FNV-1a 64-bit hash of ``data``; stable across processes and platforms."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def hash_string(text: str) -> int:
    """Stable 64-bit hash of a unicode string."""
    return hash_bytes(text.encode("utf-8"))


def hash_strings(texts: Iterable[str]) -> np.ndarray:
    """Hash a batch of strings into a uint64 array (one hash per string)."""
    return np.fromiter(
        (hash_string(t) for t in texts), dtype=np.uint64, count=-1
    )


def combine_hashes(hashes: Sequence[int]) -> int:
    """Order-sensitive combination of multiple hashes into one 64-bit value."""
    h = _FNV_OFFSET
    for value in hashes:
        for shift in (0, 16, 32, 48):
            h ^= (value >> shift) & 0xFFFF
            h = (h * _FNV_PRIME) & _MASK64
    return h
