"""Small I/O helpers used by benches and checkpointing."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


def ensure_dir(path: str | os.PathLike) -> Path:
    """Create ``path`` (and parents) if missing; return it as a ``Path``."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    return p


def write_json(path: str | os.PathLike, payload: Any) -> None:
    """Write ``payload`` as pretty JSON, creating parent directories."""
    p = Path(path)
    ensure_dir(p.parent)
    with open(p, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=_jsonify)
        handle.write("\n")


def read_json(path: str | os.PathLike) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _jsonify(obj: Any) -> Any:
    """Fallback encoder: numpy scalars/arrays to plain Python."""
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj)!r}")
