"""Seeded RNG streams.

Every stochastic component (data generators, masking, weight init, dropout)
receives an explicit ``numpy.random.Generator``. ``spawn_rng`` derives child
generators from a parent seed plus a string tag, so that independent
components get independent, reproducible streams.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import hash_string


def spawn_rng(seed: int, tag: str = "") -> np.random.Generator:
    """Create a generator keyed by ``(seed, tag)``.

    Different tags under the same seed give statistically independent streams;
    the same (seed, tag) always gives the same stream.
    """
    mixed = (int(seed) & 0xFFFFFFFF) ^ (hash_string(tag) & 0xFFFFFFFF)
    return np.random.default_rng(mixed)


class RngStream:
    """A named hierarchy of reproducible RNGs.

    >>> stream = RngStream(seed=0)
    >>> a = stream.child("weights")
    >>> b = stream.child("dropout")

    ``a`` and ``b`` are independent; re-creating the stream reproduces both.
    """

    def __init__(self, seed: int, tag: str = "root"):
        self.seed = int(seed)
        self.tag = tag
        self.generator = spawn_rng(seed, tag)

    def child(self, tag: str) -> "RngStream":
        return RngStream(self.seed, f"{self.tag}/{tag}")

    def integers(self, *args, **kwargs):
        return self.generator.integers(*args, **kwargs)

    def random(self, *args, **kwargs):
        return self.generator.random(*args, **kwargs)

    def normal(self, *args, **kwargs):
        return self.generator.normal(*args, **kwargs)

    def choice(self, *args, **kwargs):
        return self.generator.choice(*args, **kwargs)

    def shuffle(self, *args, **kwargs):
        return self.generator.shuffle(*args, **kwargs)

    def permutation(self, *args, **kwargs):
        return self.generator.permutation(*args, **kwargs)
