"""Pluggable vector-index backends behind one ``VectorIndex`` protocol.

Everything above the KNN call — the Fig. 6 table ranking, the lake catalog,
the CLI, the benchmark searchers — talks to an index through this protocol:

- ``add`` / ``add_many``      — (key, vector) insertion, bulk-friendly;
- ``remove_many``             — batch deletion by key;
- ``query`` / ``query_many``  — top-k ``(key, distance)`` per query vector,
  ascending by distance; ``query_many`` answers a whole matrix of queries in
  one call (for the exact backend that is a single BLAS matmul);
- ``keys`` / ``__contains__`` / ``__len__`` — membership, aligned with
  ``state_arrays`` for persistence.

Backends are constructed from an :class:`IndexSpec` — a named backend plus
its hyperparameters — via :func:`make_index`. The spec has a canonical
string form (``"exact"``, ``"hnsw:m=12,ef_search=48"``) used by CLI flags
and folded into the lake config fingerprint, so stores built under one
backend never silently cross-load under another.

Registered backends:

- ``"exact"`` — :class:`repro.search.index.KnnIndex`, brute force, recall
  1.0; params: ``metric``.
- ``"hnsw"``  — :class:`repro.search.hnsw.HnswIndex`, the approximate
  structure Starmie/DeepJoin use to scale column search to large lakes;
  params: ``metric``, ``m``, ``ef_construction``, ``ef_search``, ``seed``.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro import obs

#: Bumped whenever a backend's ``state_arrays`` layout changes shape.
INDEX_STATE_VERSION = 1

# Same family index.py / hnsw.py register (registration is idempotent),
# plus the merge-pass histogram only the sharded face owns.
_QUERIES = obs.counter(
    "index_queries_total", "Vector-index query rows answered, by backend", ("backend",)
).labels(backend="sharded")
_QUERY_MS = obs.histogram(
    "index_query_duration_ms",
    "Vector-index query_many latency in milliseconds, by backend",
    ("backend",),
).labels(backend="sharded")
_MERGE_MS = obs.histogram(
    "index_merge_duration_ms",
    "Sharded-index k-way merge latency in milliseconds, per query_many call",
)


@runtime_checkable
class VectorIndex(Protocol):
    """What every index backend must implement."""

    dim: int
    metric: str

    def add(self, key, vector: np.ndarray) -> None: ...

    def add_many(self, items: Sequence[tuple[object, np.ndarray]]) -> None: ...

    def remove_many(self, keys: Iterable[object]) -> int: ...

    def query(self, vector: np.ndarray, k: int) -> list[tuple[object, float]]: ...

    def query_many(
        self, matrix: np.ndarray, k: int
    ) -> list[list[tuple[object, float]]]: ...

    def keys(self) -> list: ...

    def state_keys(self) -> list: ...

    def state_arrays(self) -> tuple[dict[str, np.ndarray], dict]: ...

    def __contains__(self, key) -> bool: ...

    def __len__(self) -> int: ...


# --------------------------------------------------------------------- #
# Index specifications
# --------------------------------------------------------------------- #
def _parse_value(text: str):
    """``"8"`` -> 8, ``"0.5"`` -> 0.5, anything else stays a string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class IndexSpec:
    """A named backend plus its hyperparameters.

    ``params`` only carries *overrides*; backend defaults fill the rest at
    construction time, so two spellings of the same configuration ("hnsw"
    vs "hnsw:m=12" when 12 is the default) are distinct specs — the
    fingerprint is deliberately literal about what was requested.
    """

    backend: str = "exact"
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        # frozen=True would auto-derive a hash that chokes on the dict
        # field; hash the canonical (sorted) param view instead.
        return hash((self.backend, tuple(sorted(self.params.items()))))

    @classmethod
    def parse(cls, text: str) -> "IndexSpec":
        """``"hnsw:m=16,ef_search=48"`` -> IndexSpec("hnsw", {...})."""
        text = text.strip()
        if not text:
            raise ValueError("empty index spec")
        name, _, tail = text.partition(":")
        params: dict = {}
        if tail:
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"bad index-spec parameter {item!r} in {text!r}; "
                        "expected key=value"
                    )
                params[key.strip()] = _parse_value(value.strip())
        return cls(backend=name.strip(), params=params)

    @classmethod
    def from_dict(cls, raw: dict) -> "IndexSpec":
        return cls(backend=raw["backend"], params=dict(raw.get("params", {})))

    def to_dict(self) -> dict:
        """JSON-stable form (sorted params) for fingerprints/manifests."""
        return {
            "backend": self.backend,
            "params": {key: self.params[key] for key in sorted(self.params)},
        }

    def canonical(self) -> str:
        """The parseable one-line form shown in CLIs and stats."""
        if not self.params:
            return self.backend
        tail = ",".join(f"{key}={self.params[key]}" for key in sorted(self.params))
        return f"{self.backend}:{tail}"

    def with_defaults(self, **defaults) -> "IndexSpec":
        merged = {**defaults, **self.params}
        return IndexSpec(backend=self.backend, params=merged)


def normalize_index_spec(
    spec: "IndexSpec | str | None", **defaults
) -> IndexSpec:
    """Coerce ``None`` / a spec string / an IndexSpec into an IndexSpec.

    ``defaults`` (e.g. ``metric="cosine"``) fill parameters the spec leaves
    unset, so callers with their own metric knob stay authoritative without
    clobbering an explicit spec override. A default the backend does not
    declare is dropped, not forced — a custom backend without a ``metric``
    knob must still plug in.
    """
    if spec is None:
        spec = IndexSpec()
    elif isinstance(spec, str):
        spec = IndexSpec.parse(spec)
    elif not isinstance(spec, IndexSpec):
        raise TypeError(f"cannot interpret {spec!r} as an index spec")
    if not defaults:
        return spec
    registered = _REGISTRY.get(spec.backend)
    if registered is not None:
        allowed = registered[2]
        defaults = {
            name: value for name, value in defaults.items() if name in allowed
        }
    return spec.with_defaults(**defaults) if defaults else spec


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
#: name -> (factory(dim, **params), restorer(dim, params, keys, arrays, meta),
#:          {param name -> expected type(s)})
_REGISTRY: dict[str, tuple[Callable, Callable, dict]] = {}


def register_backend(
    name: str, factory: Callable, restorer: Callable, params: dict | None = None
) -> None:
    """Register (or replace) a backend under ``name``.

    ``params`` maps the backend's accepted hyperparameter names to their
    expected type(s), so a typo'd spec fails with a clean :class:`ValueError`
    at validation time instead of a ``TypeError`` deep inside construction.
    """
    _REGISTRY[name] = (factory, restorer, dict(params or {}))


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


def _lookup(name: str) -> tuple[Callable, Callable, dict]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown index backend {name!r}; available: {available_backends()}"
        ) from None


def validate_index_spec(spec: IndexSpec | str | None) -> IndexSpec:
    """Check a spec against its backend's declared hyperparameters.

    Raises :class:`ValueError` (never ``TypeError``) on an unknown backend,
    an unknown parameter name, or a wrong-typed value — cheap enough to run
    *before* any expensive work a caller would otherwise waste.
    """
    spec = normalize_index_spec(spec)
    _, _, allowed = _lookup(spec.backend)
    for name, value in spec.params.items():
        if name not in allowed:
            raise ValueError(
                f"index backend {spec.backend!r} has no parameter {name!r}; "
                f"accepted: {sorted(allowed)}"
            )
        expected = allowed[name]
        if not isinstance(value, expected):
            wanted = (
                "/".join(t.__name__ for t in expected)
                if isinstance(expected, tuple)
                else expected.__name__
            )
            raise ValueError(
                f"index-backend parameter {name}={value!r} must be {wanted}"
            )
    return spec


def make_index(spec: IndexSpec | str | None, dim: int) -> VectorIndex:
    """Build a fresh index for ``spec`` (default: the exact backend)."""
    spec = validate_index_spec(spec)
    factory, _, _ = _lookup(spec.backend)
    return factory(dim, **spec.params)


def restore_index(
    spec: IndexSpec | str | None,
    dim: int,
    keys: list,
    arrays: dict[str, np.ndarray],
    meta: dict,
) -> VectorIndex:
    """Rebuild a persisted index from its ``state_arrays`` output.

    ``keys`` is the decoded key list, row-aligned with the state arrays
    (key serialization is the persistence layer's concern — backends never
    see anything but live Python keys).
    """
    spec = normalize_index_spec(spec)
    _, restorer, _ = _lookup(spec.backend)
    return restorer(dim, dict(spec.params), keys, arrays, meta)


# --------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------- #
def _register_builtins() -> None:
    from repro.search.hnsw import HnswIndex
    from repro.search.index import KnnIndex

    register_backend(
        "exact", KnnIndex, KnnIndex.restore, params={"metric": str}
    )

    def _hnsw_factory(dim: int, **params) -> HnswIndex:
        # Protocol parity with the exact backend: cosine unless overridden.
        params.setdefault("metric", "cosine")
        return HnswIndex(dim, **params)

    def _hnsw_restore(dim, params, keys, arrays, meta) -> HnswIndex:
        params = dict(params)
        params.setdefault("metric", "cosine")
        return HnswIndex.restore(dim, params, keys, arrays, meta)

    register_backend(
        "hnsw",
        _hnsw_factory,
        _hnsw_restore,
        params={
            "metric": str,
            "m": int,
            "ef_construction": int,
            "ef_search": int,
            "seed": int,
            "compact_ratio": (int, float),
            "compact_min": int,
        },
    )


_register_builtins()


# --------------------------------------------------------------------- #
# Sharded (multi-index) merge path
# --------------------------------------------------------------------- #
def stable_shard(text: str, n_shards: int) -> int:
    """Deterministic, process- and platform-stable shard of a string key.

    Python's builtin ``hash`` is salted per process, so it can never route
    a persisted table to the same shard twice; a SHA-256 prefix can.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


class ShardedIndex:
    """N backend indexes behind one :class:`VectorIndex` face.

    Every key is owned by exactly one sub-index (``router(key)`` — the lake
    routes by table name, so a table's columns always land together), which
    makes add/remove a single routed delegation. ``query_many`` fans the
    whole query matrix across the sub-indexes and k-way merges each row's
    sorted hit lists: because every sub-index returns *its* top-k, the
    merged top-k holds the same (key, distance) *set* a single flat index
    over the union would return — rankings are shard-count-invariant
    whenever the distances at the cut are distinct. Exact ties are ordered
    deterministically (stable merge: shard order, then the sub-index's own
    order) but not necessarily as a flat index's argpartition would break
    them; identical vectors *within* one table co-locate by construction,
    so the routine duplicate case (a table's over-budget fallback columns)
    can never straddle shards.

    Persistence is deliberately *not* monolithic: callers save each
    sub-index beside its shard's data (``subs``), and :meth:`dirty_shards`
    names the sub-indexes mutated since the last :meth:`mark_clean`, so an
    incremental delta rewrites one shard's artifact, not all of them.
    """

    def __init__(
        self,
        dim: int,
        subs: Sequence[VectorIndex],
        router: Callable[[object], int],
        factory: Callable[[], VectorIndex] | None = None,
        restored_shards: Iterable[int] = (),
    ):
        if not subs:
            raise ValueError("ShardedIndex needs at least one sub-index")
        self.dim = dim
        self.subs: list[VectorIndex] = list(subs)
        self.router = router
        self.factory = factory
        self.metric = self.subs[0].metric
        #: Shards restored from persistence (set by the store's loader);
        #: everything else is fresh and needs a rebuild from records.
        self.restored_shards = set(restored_shards)
        self._dirty: set[int] = set()

    @property
    def n_shards(self) -> int:
        return len(self.subs)

    def shard_of(self, key) -> int:
        shard = self.router(key)
        if not 0 <= shard < len(self.subs):
            raise ValueError(
                f"router sent {key!r} to shard {shard} of {len(self.subs)}"
            )
        return shard

    def reset_shard(self, shard: int) -> None:
        """Replace one sub-index with a fresh empty one (rebuild seam)."""
        if self.factory is None:
            raise ValueError("ShardedIndex has no factory to reset shards with")
        self.subs[shard] = self.factory()
        self.restored_shards.discard(shard)

    # -- mutation ------------------------------------------------------- #
    def add(self, key, vector: np.ndarray) -> None:
        shard = self.shard_of(key)
        self.subs[shard].add(key, vector)
        self._dirty.add(shard)

    def add_many(self, items: Sequence[tuple[object, np.ndarray]]) -> None:
        groups: dict[int, list] = defaultdict(list)
        for key, vector in items:
            groups[self.shard_of(key)].append((key, vector))
        for shard, group in groups.items():
            self.subs[shard].add_many(group)
            self._dirty.add(shard)

    def remove_many(self, keys: Iterable[object]) -> int:
        groups: dict[int, list] = defaultdict(list)
        for key in keys:
            groups[self.shard_of(key)].append(key)
        removed = 0
        for shard, group in groups.items():
            count = self.subs[shard].remove_many(group)
            if count:
                self._dirty.add(shard)
            removed += count
        return removed

    # -- queries -------------------------------------------------------- #
    def query_many(
        self, matrix: np.ndarray, k: int
    ) -> list[list[tuple[object, float]]]:
        """Fan one query matrix across every sub-index, k-way merge rows.

        Each populated sub-index answers the whole matrix in one batched
        call; per query row the sorted per-shard hit lists merge in one
        ``heapq.merge`` pass (stable: distance ties keep shard order).
        """
        queries = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        n_queries = queries.shape[0]
        if k <= 0 or n_queries == 0:
            return [[] for _ in range(n_queries)]
        with obs.span("index.query", backend="sharded", shards=len(self.subs)) as timed:
            per_sub = [sub.query_many(queries, k) for sub in self.subs if len(sub)]
            if not per_sub:
                results: list[list[tuple[object, float]]] = [
                    [] for _ in range(n_queries)
                ]
            elif len(per_sub) == 1:
                results = per_sub[0]
            else:
                with obs.span("index.merge", shards=len(per_sub)) as merge:
                    results = [
                        list(islice(heapq.merge(*rows, key=lambda hit: hit[1]), k))
                        for rows in zip(*per_sub)
                    ]
                if obs.enabled():
                    _MERGE_MS.observe(merge.duration_ms)
        if obs.enabled():
            _QUERIES.inc(n_queries)
            _QUERY_MS.observe(timed.duration_ms)
        return results

    def query(self, vector: np.ndarray, k: int) -> list[tuple[object, float]]:
        return self.query_many(np.asarray(vector, dtype=np.float64)[None, :], k)[0]

    # -- membership / state --------------------------------------------- #
    def keys(self) -> list:
        return [key for sub in self.subs for key in sub.keys()]

    def __contains__(self, key) -> bool:
        return key in self.subs[self.shard_of(key)]

    def __len__(self) -> int:
        return sum(len(sub) for sub in self.subs)

    def dirty_shards(self) -> set[int]:
        """Sub-indexes mutated since the last :meth:`mark_clean`."""
        return set(self._dirty)

    def mark_dirty(self, shard: int) -> None:
        """Force one shard into the next save (e.g. a rebuilt-but-empty
        shard whose stale on-disk artifact needs healing)."""
        self._dirty.add(shard)

    def mark_clean(self) -> None:
        self._dirty.clear()

    def state_keys(self) -> list:
        raise NotImplementedError(
            "a ShardedIndex persists per shard — save each sub-index via "
            "subs[k].state_keys()/state_arrays()"
        )

    def state_arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        raise NotImplementedError(
            "a ShardedIndex persists per shard — save each sub-index via "
            "subs[k].state_keys()/state_arrays()"
        )


def make_sharded_index(
    spec: IndexSpec | str | None,
    dim: int,
    n_shards: int,
    router: Callable[[object], int],
) -> ShardedIndex:
    """N fresh backend indexes for ``spec`` behind one sharded face."""
    spec = validate_index_spec(spec)
    return ShardedIndex(
        dim,
        subs=[make_index(spec, dim) for _ in range(n_shards)],
        router=router,
        factory=lambda: make_index(spec, dim),
    )
