"""Pluggable vector-index backends behind one ``VectorIndex`` protocol.

Everything above the KNN call — the Fig. 6 table ranking, the lake catalog,
the CLI, the benchmark searchers — talks to an index through this protocol:

- ``add`` / ``add_many``      — (key, vector) insertion, bulk-friendly;
- ``remove_many``             — batch deletion by key;
- ``query`` / ``query_many``  — top-k ``(key, distance)`` per query vector,
  ascending by distance; ``query_many`` answers a whole matrix of queries in
  one call (for the exact backend that is a single BLAS matmul);
- ``keys`` / ``__contains__`` / ``__len__`` — membership, aligned with
  ``state_arrays`` for persistence.

Backends are constructed from an :class:`IndexSpec` — a named backend plus
its hyperparameters — via :func:`make_index`. The spec has a canonical
string form (``"exact"``, ``"hnsw:m=12,ef_search=48"``) used by CLI flags
and folded into the lake config fingerprint, so stores built under one
backend never silently cross-load under another.

Registered backends:

- ``"exact"`` — :class:`repro.search.index.KnnIndex`, brute force, recall
  1.0; params: ``metric``.
- ``"hnsw"``  — :class:`repro.search.hnsw.HnswIndex`, the approximate
  structure Starmie/DeepJoin use to scale column search to large lakes;
  params: ``metric``, ``m``, ``ef_construction``, ``ef_search``, ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

#: Bumped whenever a backend's ``state_arrays`` layout changes shape.
INDEX_STATE_VERSION = 1


@runtime_checkable
class VectorIndex(Protocol):
    """What every index backend must implement."""

    dim: int
    metric: str

    def add(self, key, vector: np.ndarray) -> None: ...

    def add_many(self, items: Sequence[tuple[object, np.ndarray]]) -> None: ...

    def remove_many(self, keys: Iterable[object]) -> int: ...

    def query(self, vector: np.ndarray, k: int) -> list[tuple[object, float]]: ...

    def query_many(
        self, matrix: np.ndarray, k: int
    ) -> list[list[tuple[object, float]]]: ...

    def keys(self) -> list: ...

    def state_keys(self) -> list: ...

    def state_arrays(self) -> tuple[dict[str, np.ndarray], dict]: ...

    def __contains__(self, key) -> bool: ...

    def __len__(self) -> int: ...


# --------------------------------------------------------------------- #
# Index specifications
# --------------------------------------------------------------------- #
def _parse_value(text: str):
    """``"8"`` -> 8, ``"0.5"`` -> 0.5, anything else stays a string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class IndexSpec:
    """A named backend plus its hyperparameters.

    ``params`` only carries *overrides*; backend defaults fill the rest at
    construction time, so two spellings of the same configuration ("hnsw"
    vs "hnsw:m=12" when 12 is the default) are distinct specs — the
    fingerprint is deliberately literal about what was requested.
    """

    backend: str = "exact"
    params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        # frozen=True would auto-derive a hash that chokes on the dict
        # field; hash the canonical (sorted) param view instead.
        return hash((self.backend, tuple(sorted(self.params.items()))))

    @classmethod
    def parse(cls, text: str) -> "IndexSpec":
        """``"hnsw:m=16,ef_search=48"`` -> IndexSpec("hnsw", {...})."""
        text = text.strip()
        if not text:
            raise ValueError("empty index spec")
        name, _, tail = text.partition(":")
        params: dict = {}
        if tail:
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"bad index-spec parameter {item!r} in {text!r}; "
                        "expected key=value"
                    )
                params[key.strip()] = _parse_value(value.strip())
        return cls(backend=name.strip(), params=params)

    @classmethod
    def from_dict(cls, raw: dict) -> "IndexSpec":
        return cls(backend=raw["backend"], params=dict(raw.get("params", {})))

    def to_dict(self) -> dict:
        """JSON-stable form (sorted params) for fingerprints/manifests."""
        return {
            "backend": self.backend,
            "params": {key: self.params[key] for key in sorted(self.params)},
        }

    def canonical(self) -> str:
        """The parseable one-line form shown in CLIs and stats."""
        if not self.params:
            return self.backend
        tail = ",".join(f"{key}={self.params[key]}" for key in sorted(self.params))
        return f"{self.backend}:{tail}"

    def with_defaults(self, **defaults) -> "IndexSpec":
        merged = {**defaults, **self.params}
        return IndexSpec(backend=self.backend, params=merged)


def normalize_index_spec(
    spec: "IndexSpec | str | None", **defaults
) -> IndexSpec:
    """Coerce ``None`` / a spec string / an IndexSpec into an IndexSpec.

    ``defaults`` (e.g. ``metric="cosine"``) fill parameters the spec leaves
    unset, so callers with their own metric knob stay authoritative without
    clobbering an explicit spec override. A default the backend does not
    declare is dropped, not forced — a custom backend without a ``metric``
    knob must still plug in.
    """
    if spec is None:
        spec = IndexSpec()
    elif isinstance(spec, str):
        spec = IndexSpec.parse(spec)
    elif not isinstance(spec, IndexSpec):
        raise TypeError(f"cannot interpret {spec!r} as an index spec")
    if not defaults:
        return spec
    registered = _REGISTRY.get(spec.backend)
    if registered is not None:
        allowed = registered[2]
        defaults = {
            name: value for name, value in defaults.items() if name in allowed
        }
    return spec.with_defaults(**defaults) if defaults else spec


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
#: name -> (factory(dim, **params), restorer(dim, params, keys, arrays, meta),
#:          {param name -> expected type(s)})
_REGISTRY: dict[str, tuple[Callable, Callable, dict]] = {}


def register_backend(
    name: str, factory: Callable, restorer: Callable, params: dict | None = None
) -> None:
    """Register (or replace) a backend under ``name``.

    ``params`` maps the backend's accepted hyperparameter names to their
    expected type(s), so a typo'd spec fails with a clean :class:`ValueError`
    at validation time instead of a ``TypeError`` deep inside construction.
    """
    _REGISTRY[name] = (factory, restorer, dict(params or {}))


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


def _lookup(name: str) -> tuple[Callable, Callable, dict]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown index backend {name!r}; available: {available_backends()}"
        ) from None


def validate_index_spec(spec: IndexSpec | str | None) -> IndexSpec:
    """Check a spec against its backend's declared hyperparameters.

    Raises :class:`ValueError` (never ``TypeError``) on an unknown backend,
    an unknown parameter name, or a wrong-typed value — cheap enough to run
    *before* any expensive work a caller would otherwise waste.
    """
    spec = normalize_index_spec(spec)
    _, _, allowed = _lookup(spec.backend)
    for name, value in spec.params.items():
        if name not in allowed:
            raise ValueError(
                f"index backend {spec.backend!r} has no parameter {name!r}; "
                f"accepted: {sorted(allowed)}"
            )
        expected = allowed[name]
        if not isinstance(value, expected):
            wanted = (
                "/".join(t.__name__ for t in expected)
                if isinstance(expected, tuple)
                else expected.__name__
            )
            raise ValueError(
                f"index-backend parameter {name}={value!r} must be {wanted}"
            )
    return spec


def make_index(spec: IndexSpec | str | None, dim: int) -> VectorIndex:
    """Build a fresh index for ``spec`` (default: the exact backend)."""
    spec = validate_index_spec(spec)
    factory, _, _ = _lookup(spec.backend)
    return factory(dim, **spec.params)


def restore_index(
    spec: IndexSpec | str | None,
    dim: int,
    keys: list,
    arrays: dict[str, np.ndarray],
    meta: dict,
) -> VectorIndex:
    """Rebuild a persisted index from its ``state_arrays`` output.

    ``keys`` is the decoded key list, row-aligned with the state arrays
    (key serialization is the persistence layer's concern — backends never
    see anything but live Python keys).
    """
    spec = normalize_index_spec(spec)
    _, restorer, _ = _lookup(spec.backend)
    return restorer(dim, dict(spec.params), keys, arrays, meta)


# --------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------- #
def _register_builtins() -> None:
    from repro.search.hnsw import HnswIndex
    from repro.search.index import KnnIndex

    register_backend(
        "exact", KnnIndex, KnnIndex.restore, params={"metric": str}
    )

    def _hnsw_factory(dim: int, **params) -> HnswIndex:
        # Protocol parity with the exact backend: cosine unless overridden.
        params.setdefault("metric", "cosine")
        return HnswIndex(dim, **params)

    def _hnsw_restore(dim, params, keys, arrays, meta) -> HnswIndex:
        params = dict(params)
        params.setdefault("metric", "cosine")
        return HnswIndex.restore(dim, params, keys, arrays, meta)

    register_backend(
        "hnsw",
        _hnsw_factory,
        _hnsw_restore,
        params={
            "metric": str,
            "m": int,
            "ef_construction": int,
            "ef_search": int,
            "seed": int,
            "compact_ratio": (int, float),
            "compact_min": int,
        },
    )


_register_builtins()
