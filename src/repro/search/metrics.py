"""Retrieval metrics: P@k, R@k, per-query F1@k, mean F1, F1-vs-k curves.

The paper reports "Mean F1" (percent), "P@10"/"R@10" (Tables V-VIII) and F1
plots against varying k (Figs. 4 and 8). F1@k for one query is the harmonic
mean of precision@k and recall@k; the mean is over queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.lakebench.base import SearchBenchmark, SearchQuery


def precision_recall_at_k(
    retrieved: list[str], relevant: set[str], k: int
) -> tuple[float, float]:
    """Precision and recall of the top-``k`` retrieved ids."""
    if k <= 0:
        return 0.0, 0.0
    top = retrieved[:k]
    hits = sum(1 for item in top if item in relevant)
    precision = hits / k
    recall = hits / len(relevant) if relevant else 0.0
    return precision, recall


def f1_at_k(retrieved: list[str], relevant: set[str], k: int) -> float:
    """Harmonic mean of P@k and R@k (0 when both are 0)."""
    precision, recall = precision_recall_at_k(retrieved, relevant, k)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass
class SearchResult:
    """Aggregated metrics of one system over one benchmark."""

    system: str
    benchmark: str
    k: int
    mean_f1: float
    precision_at_k: float
    recall_at_k: float
    #: k -> mean F1 over queries, for Fig. 4 / Fig. 8 style curves.
    f1_curve: dict[int, float] = field(default_factory=dict)

    def row(self) -> dict:
        """A paper-style table row (Mean F1 in percent)."""
        return {
            "system": self.system,
            "mean_f1": round(100.0 * self.mean_f1, 2),
            f"p@{self.k}": round(self.precision_at_k, 2),
            f"r@{self.k}": round(self.recall_at_k, 2),
        }


def evaluate_search(
    system: str,
    benchmark: SearchBenchmark,
    retrieve: Callable[[SearchQuery, int], list[str]],
    k: int = 10,
    curve_ks: Iterable[int] | None = None,
) -> SearchResult:
    """Run ``retrieve(query, k)`` for every query and aggregate metrics.

    ``retrieve`` must return ranked table names, *excluding* the query table
    itself. The F1 curve is computed from a single retrieval at ``max(ks)``
    and truncated per k, matching how the paper sweeps k.
    """
    ks = sorted(set(curve_ks or [])) or [k]
    max_k = max(max(ks), k)
    f1_sums = {kk: 0.0 for kk in ks}
    f1_sum = precision_sum = recall_sum = 0.0
    n = 0
    for query in benchmark.queries:
        relevant = benchmark.relevant(query)
        if not relevant:
            continue
        ranked = retrieve(query, max_k)
        f1_sum += f1_at_k(ranked, relevant, k)
        precision, recall = precision_recall_at_k(ranked, relevant, k)
        precision_sum += precision
        recall_sum += recall
        for kk in ks:
            f1_sums[kk] += f1_at_k(ranked, relevant, kk)
        n += 1
    n = max(1, n)
    return SearchResult(
        system=system,
        benchmark=benchmark.name,
        k=k,
        mean_f1=f1_sum / n,
        precision_at_k=precision_sum / n,
        recall_at_k=recall_sum / n,
        f1_curve={kk: f1_sums[kk] / n for kk in ks},
    )
