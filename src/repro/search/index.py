"""Exact k-nearest-neighbour index over dense vectors.

The paper indexes table/column embeddings and retrieves nearest neighbours
("we recommend indexing the datalake offline and at query time only compute
embeddings for the query table"). At reproduction scale an exact vectorized
index is both faster and noise-free; the LSH structures used by specific
baselines live in :mod:`repro.sketch.lsh` / :mod:`repro.sketch.simhash`.

Storage is a capacity-doubling row buffer so the index supports *incremental*
maintenance: ``add``/``add_many`` are amortized O(1) per row (no re-stacking
of the whole corpus on the next query) and ``remove_many`` compacts in one
O(n) pass per batch. This is what lets :mod:`repro.lake` apply one-table
deltas to a standing lake without rebuilding the index.

``query_many`` answers a whole matrix of queries with one BLAS matmul plus
one axis-wise partition — the batched primitive the Fig. 6 NEARTABLES loop
(:class:`repro.search.tables.TableSearcher`) runs on, so a q-column query
table costs one distance computation instead of q Python round-trips.
This class implements the :class:`repro.search.backend.VectorIndex`
protocol (the ``"exact"`` backend).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import obs

#: Smallest non-zero row capacity allocated by the growable buffer.
_MIN_CAPACITY = 8

# Shared across backends; registration is idempotent, so hnsw.py and
# backend.py resolve the same metrics without importing this module.
_QUERIES = obs.counter(
    "index_queries_total", "Vector-index query rows answered, by backend", ("backend",)
).labels(backend="exact")
_QUERY_MS = obs.histogram(
    "index_query_duration_ms",
    "Vector-index query_many latency in milliseconds, by backend",
    ("backend",),
).labels(backend="exact")


class KnnIndex:
    """Brute-force KNN with cosine or euclidean distance."""

    def __init__(self, dim: int, metric: str = "cosine"):
        if metric not in ("cosine", "euclidean"):
            raise ValueError(f"unknown metric {metric!r}")
        self.dim = dim
        self.metric = metric
        self._keys: list = []
        #: key -> number of live rows under it; O(1) membership and an O(1)
        #: "nothing to remove" fast path without scanning ``_keys``.
        self._key_counts: dict = {}
        self._data = np.zeros((0, dim), dtype=np.float64)
        self._size = 0

    # ------------------------------------------------------------------ #
    def _reserve(self, extra: int) -> None:
        """Grow the backing buffer (doubling) to fit ``extra`` more rows."""
        need = self._size + extra
        capacity = self._data.shape[0]
        if need <= capacity:
            return
        new_capacity = max(need, max(_MIN_CAPACITY, 2 * capacity))
        grown = np.zeros((new_capacity, self.dim), dtype=np.float64)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected dim {self.dim}, got {vector.shape}")
        return vector

    def add(self, key, vector: np.ndarray) -> None:
        """Append one (key, vector) row — amortized O(1)."""
        vector = self._check(vector)
        self._reserve(1)
        self._data[self._size] = vector
        self._keys.append(key)
        self._key_counts[key] = self._key_counts.get(key, 0) + 1
        self._size += 1

    def add_many(self, items: Sequence[tuple[object, np.ndarray]]) -> None:
        """Bulk append: one reserve + one block copy for the whole batch."""
        items = list(items)
        if not items:
            return
        block = np.stack([self._check(vector) for _, vector in items])
        self._reserve(len(items))
        self._data[self._size : self._size + len(items)] = block
        for key, _ in items:
            self._keys.append(key)
            self._key_counts[key] = self._key_counts.get(key, 0) + 1
        self._size += len(items)

    # ------------------------------------------------------------------ #
    def remove_many(self, keys: Iterable[object]) -> int:
        """Drop every row whose key is in ``keys``; returns rows removed.

        One compaction pass over the buffer regardless of batch size, so a
        whole-table delta costs the same as a single-column one. Keys not
        present cost an O(1) dict probe — no scan of the key list.
        """
        doomed = {key for key in keys if key in self._key_counts}
        if not doomed:
            return 0
        keep = [i for i, key in enumerate(self._keys) if key not in doomed]
        removed = self._size - len(keep)
        self._data[: len(keep)] = self._data[keep]
        self._keys = [self._keys[i] for i in keep]
        for key in doomed:
            del self._key_counts[key]
        self._size = len(keep)
        return removed

    def remove(self, key) -> int:
        """Drop every row stored under ``key``; returns rows removed."""
        return self.remove_many([key])

    # ------------------------------------------------------------------ #
    def _matrix(self) -> np.ndarray:
        """The live (n, dim) view of stored vectors — no copying."""
        return self._data[: self._size]

    def query_many(
        self, matrix: np.ndarray, k: int
    ) -> list[list[tuple[object, float]]]:
        """Top-``k`` (key, distance) lists for every row of ``matrix``.

        One ``(q, dim) @ (dim, n)`` matmul scores all queries against the
        whole corpus, then one axis-wise ``argpartition`` + sort extracts
        each row's top-k — the vectorized form of q separate ``query``
        calls, with identical results.
        """
        with obs.span("index.query", backend="exact") as timed:
            results = self._query_many(matrix, k)
        if obs.enabled():
            _QUERIES.inc(len(results))
            _QUERY_MS.observe(timed.duration_ms)
        return results

    def _query_many(
        self, matrix: np.ndarray, k: int
    ) -> list[list[tuple[object, float]]]:
        queries = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"expected query matrix (*, {self.dim}), got {queries.shape}"
            )
        data = self._matrix()
        n_queries = queries.shape[0]
        if data.shape[0] == 0 or k <= 0 or n_queries == 0:
            return [[] for _ in range(n_queries)]
        scores = queries @ data.T  # (q, n)
        if self.metric == "cosine":
            denominator = np.linalg.norm(data, axis=1)[None, :] * (
                np.linalg.norm(queries, axis=1)[:, None] + 1e-12
            )
            denominator = np.where(denominator == 0.0, 1e-12, denominator)
            distances = 1.0 - scores / denominator
        else:
            squared = (
                (queries**2).sum(axis=1)[:, None]
                + (data**2).sum(axis=1)[None, :]
                - 2.0 * scores
            )
            distances = np.sqrt(np.maximum(squared, 0.0))
        k = min(k, data.shape[0])
        top = np.argpartition(distances, k - 1, axis=1)[:, :k]
        top_distances = np.take_along_axis(distances, top, axis=1)
        order = np.argsort(top_distances, axis=1)
        top = np.take_along_axis(top, order, axis=1)
        top_distances = np.take_along_axis(top_distances, order, axis=1)
        return [
            [
                (self._keys[int(index)], float(distance))
                for index, distance in zip(row_indices, row_distances)
            ]
            for row_indices, row_distances in zip(top, top_distances)
        ]

    def query(self, vector: np.ndarray, k: int) -> list[tuple[object, float]]:
        """Top-``k`` (key, distance) pairs, ascending by distance.

        A batch of one through :meth:`query_many`, so single- and batched-
        query results agree by construction.
        """
        return self.query_many(self._check(vector)[None, :], k)[0]

    def keys(self) -> list:
        return list(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._key_counts

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    def state_keys(self) -> list:
        """Row-aligned keys for persistence (the exact backend has no
        tombstones, so this is just :meth:`keys`)."""
        return list(self._keys)

    def state_arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        """Persistable state, row-aligned with :meth:`state_keys`.

        The exact backend is fully described by its vector matrix; keys are
        serialized by the persistence layer.
        """
        return {"vectors": self._matrix().copy()}, {"metric": self.metric}

    @classmethod
    def restore(
        cls, dim: int, params: dict, keys: list, arrays: dict, meta: dict
    ) -> "KnnIndex":
        """Rebuild from :meth:`state_arrays` output — one block copy, no
        per-row insertions."""
        metric = meta.get("metric", params.get("metric", "cosine"))
        index = cls(dim, metric=metric)
        vectors = np.asarray(arrays["vectors"], dtype=np.float64).reshape(-1, dim)
        if vectors.shape[0] != len(keys):
            raise ValueError(
                f"persisted index has {vectors.shape[0]} rows but "
                f"{len(keys)} keys"
            )
        index._data = vectors.copy()
        index._size = vectors.shape[0]
        index._keys = list(keys)
        counts: dict = {}
        for key in index._keys:
            counts[key] = counts.get(key, 0) + 1
        index._key_counts = counts
        return index
