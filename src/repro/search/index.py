"""Exact k-nearest-neighbour index over dense vectors.

The paper indexes table/column embeddings and retrieves nearest neighbours
("we recommend indexing the datalake offline and at query time only compute
embeddings for the query table"). At reproduction scale an exact vectorized
index is both faster and noise-free; the LSH structures used by specific
baselines live in :mod:`repro.sketch.lsh` / :mod:`repro.sketch.simhash`.

Storage is a capacity-doubling row buffer so the index supports *incremental*
maintenance: ``add``/``add_many`` are amortized O(1) per row (no re-stacking
of the whole corpus on the next query) and ``remove_many`` compacts in one
O(n) pass per batch. This is what lets :mod:`repro.lake` apply one-table
deltas to a standing lake without rebuilding the index.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Smallest non-zero row capacity allocated by the growable buffer.
_MIN_CAPACITY = 8


class KnnIndex:
    """Brute-force KNN with cosine or euclidean distance."""

    def __init__(self, dim: int, metric: str = "cosine"):
        if metric not in ("cosine", "euclidean"):
            raise ValueError(f"unknown metric {metric!r}")
        self.dim = dim
        self.metric = metric
        self._keys: list = []
        self._data = np.zeros((0, dim), dtype=np.float64)
        self._size = 0

    # ------------------------------------------------------------------ #
    def _reserve(self, extra: int) -> None:
        """Grow the backing buffer (doubling) to fit ``extra`` more rows."""
        need = self._size + extra
        capacity = self._data.shape[0]
        if need <= capacity:
            return
        new_capacity = max(need, max(_MIN_CAPACITY, 2 * capacity))
        grown = np.zeros((new_capacity, self.dim), dtype=np.float64)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected dim {self.dim}, got {vector.shape}")
        return vector

    def add(self, key, vector: np.ndarray) -> None:
        """Append one (key, vector) row — amortized O(1)."""
        vector = self._check(vector)
        self._reserve(1)
        self._data[self._size] = vector
        self._keys.append(key)
        self._size += 1

    def add_many(self, items: Sequence[tuple[object, np.ndarray]]) -> None:
        """Bulk append: one reserve + one block copy for the whole batch."""
        items = list(items)
        if not items:
            return
        block = np.stack([self._check(vector) for _, vector in items])
        self._reserve(len(items))
        self._data[self._size : self._size + len(items)] = block
        self._keys.extend(key for key, _ in items)
        self._size += len(items)

    # ------------------------------------------------------------------ #
    def remove_many(self, keys: Iterable[object]) -> int:
        """Drop every row whose key is in ``keys``; returns rows removed.

        One compaction pass over the buffer regardless of batch size, so a
        whole-table delta costs the same as a single-column one.
        """
        doomed = set(keys)
        if not doomed:
            return 0
        keep = [i for i, key in enumerate(self._keys) if key not in doomed]
        removed = self._size - len(keep)
        if removed == 0:
            return 0
        self._data[: len(keep)] = self._data[keep]
        self._keys = [self._keys[i] for i in keep]
        self._size = len(keep)
        return removed

    def remove(self, key) -> int:
        """Drop every row stored under ``key``; returns rows removed."""
        return self.remove_many([key])

    # ------------------------------------------------------------------ #
    def _matrix(self) -> np.ndarray:
        """The live (n, dim) view of stored vectors — no copying."""
        return self._data[: self._size]

    def query(self, vector: np.ndarray, k: int) -> list[tuple[object, float]]:
        """Top-``k`` (key, distance) pairs, ascending by distance."""
        matrix = self._matrix()
        if matrix.shape[0] == 0 or k <= 0:
            return []
        vector = np.asarray(vector, dtype=np.float64)
        if self.metric == "cosine":
            norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(vector) + 1e-12)
            norms = np.where(norms == 0.0, 1e-12, norms)
            distances = 1.0 - (matrix @ vector) / norms
        else:
            distances = np.linalg.norm(matrix - vector[None, :], axis=1)
        k = min(k, matrix.shape[0])
        top = np.argpartition(distances, k - 1)[:k]
        top = top[np.argsort(distances[top])]
        return [(self._keys[i], float(distances[i])) for i in top]

    def keys(self) -> list:
        return list(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return self._size
