"""Exact k-nearest-neighbour index over dense vectors.

The paper indexes table/column embeddings and retrieves nearest neighbours
("we recommend indexing the datalake offline and at query time only compute
embeddings for the query table"). At reproduction scale an exact vectorized
index is both faster and noise-free; the LSH structures used by specific
baselines live in :mod:`repro.sketch.lsh` / :mod:`repro.sketch.simhash`.
"""

from __future__ import annotations

import numpy as np


class KnnIndex:
    """Brute-force KNN with cosine or euclidean distance."""

    def __init__(self, dim: int, metric: str = "cosine"):
        if metric not in ("cosine", "euclidean"):
            raise ValueError(f"unknown metric {metric!r}")
        self.dim = dim
        self.metric = metric
        self._keys: list = []
        self._vectors: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None

    def add(self, key, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected dim {self.dim}, got {vector.shape}")
        self._keys.append(key)
        self._vectors.append(vector)
        self._matrix = None

    def add_many(self, items: list[tuple[object, np.ndarray]]) -> None:
        for key, vector in items:
            self.add(key, vector)

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.stack(self._vectors) if self._vectors else np.zeros((0, self.dim))
        return self._matrix

    def query(self, vector: np.ndarray, k: int) -> list[tuple[object, float]]:
        """Top-``k`` (key, distance) pairs, ascending by distance."""
        matrix = self._ensure_matrix()
        if matrix.shape[0] == 0:
            return []
        vector = np.asarray(vector, dtype=np.float64)
        if self.metric == "cosine":
            norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(vector) + 1e-12)
            norms = np.where(norms == 0.0, 1e-12, norms)
            distances = 1.0 - (matrix @ vector) / norms
        else:
            distances = np.linalg.norm(matrix - vector[None, :], axis=1)
        k = min(k, matrix.shape[0])
        top = np.argpartition(distances, k - 1)[:k]
        top = top[np.argsort(distances[top])]
        return [(self._keys[i], float(distances[i])) for i in top]

    def __len__(self) -> int:
        return len(self._keys)
