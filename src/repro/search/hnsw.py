"""HNSW: hierarchical navigable small world graphs for approximate KNN.

DeepJoin (Dong et al., VLDB 2023) indexes its column embeddings with HNSW
(Malkov & Yashunin, TPAMI 2020). This is a from-scratch implementation of
the algorithm's core: a layered proximity graph where each node appears in
level 0 and, with geometrically decaying probability, in higher levels;
search greedily descends from the top layer and runs best-first beam search
(``ef``) at level 0.

At reproduction scale an exact index is faster, so the library defaults to
:class:`repro.search.index.KnnIndex`; this class exists because the paper's
baseline names the structure, and the recall/efficiency trade-off is itself
benchmarkable (see ``tests/search/test_hnsw.py``).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.utils.rng import spawn_rng


class HnswIndex:
    """Approximate nearest-neighbour search over dense vectors.

    Parameters follow the paper's notation: ``m`` is the maximum degree per
    node and layer, ``ef_construction`` the beam width while inserting,
    ``ef_search`` the default beam width while querying.
    """

    def __init__(self, dim: int, m: int = 8, ef_construction: int = 32,
                 ef_search: int = 24, seed: int = 11):
        self.dim = dim
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self._rng = spawn_rng(seed, "hnsw")
        self._level_scale = 1.0 / math.log(m)
        self._keys: list = []
        self._vectors: list[np.ndarray] = []
        #: per node: list of neighbour-id lists, one per level (0..node_level)
        self._graph: list[list[list[int]]] = []
        self._entry: int | None = None
        self._max_level = -1

    def __len__(self) -> int:
        return len(self._keys)

    # ------------------------------------------------------------------ #
    def _distance(self, a: int, query: np.ndarray) -> float:
        return float(np.linalg.norm(self._vectors[a] - query))

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_scale)

    def _greedy_descend(self, query: np.ndarray, start: int, level: int) -> int:
        """Follow the closest-neighbour chain on one level."""
        current = start
        current_dist = self._distance(current, query)
        improved = True
        while improved:
            improved = False
            for neighbour in self._graph[current][level]:
                d = self._distance(neighbour, query)
                if d < current_dist:
                    current, current_dist = neighbour, d
                    improved = True
        return current

    def _search_level(self, query: np.ndarray, entry: int, ef: int,
                      level: int) -> list[tuple[float, int]]:
        """Best-first beam search; returns (distance, node) sorted ascending."""
        visited = {entry}
        entry_dist = self._distance(entry, query)
        candidates = [(entry_dist, entry)]           # min-heap
        best: list[tuple[float, int]] = [(-entry_dist, entry)]  # max-heap
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            for neighbour in self._graph[node][level]:
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                d = self._distance(neighbour, query)
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbour))
                    heapq.heappush(best, (-d, neighbour))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, n) for d, n in best)

    def _select_neighbours(self, base: np.ndarray,
                           candidates: list[tuple[float, int]]) -> list[int]:
        """Malkov's neighbour-selection heuristic.

        Walk candidates by increasing distance to ``base`` and keep one only
        if it is closer to ``base`` than to every neighbour already kept.
        Without this, clustered data prunes away all long-range links and
        recall collapses across clusters (the known failure of naive
        closest-m selection).
        """
        kept: list[int] = []
        for dist, node in sorted(candidates):
            if len(kept) >= self.m:
                break
            ok = True
            for other in kept:
                if (
                    float(np.linalg.norm(self._vectors[node] - self._vectors[other]))
                    < dist
                ):
                    ok = False
                    break
            if ok:
                kept.append(node)
        # Backfill with the closest skipped candidates if under-full.
        if len(kept) < self.m:
            for _, node in sorted(candidates):
                if node not in kept:
                    kept.append(node)
                if len(kept) >= self.m:
                    break
        return kept

    # ------------------------------------------------------------------ #
    def insert(self, key, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected dim {self.dim}, got {vector.shape}")
        node = len(self._keys)
        level = self._random_level()
        self._keys.append(key)
        self._vectors.append(vector)
        self._graph.append([[] for _ in range(level + 1)])

        if self._entry is None:
            self._entry = node
            self._max_level = level
            return

        entry = self._entry
        # Descend levels above the new node's level greedily.
        for lvl in range(self._max_level, level, -1):
            if lvl < len(self._graph[entry]):
                entry = self._greedy_descend(vector, entry, lvl)
        # Connect on each shared level.
        for lvl in range(min(level, self._max_level), -1, -1):
            found = self._search_level(vector, entry, self.ef_construction, lvl)
            neighbours = self._select_neighbours(vector, found)
            self._graph[node][lvl] = list(neighbours)
            for neighbour in neighbours:
                links = self._graph[neighbour][lvl]
                links.append(node)
                if len(links) > self.m:
                    # Re-prune with the same diversity heuristic.
                    scored = [
                        (
                            float(
                                np.linalg.norm(
                                    self._vectors[neighbour] - self._vectors[other]
                                )
                            ),
                            other,
                        )
                        for other in links
                    ]
                    self._graph[neighbour][lvl] = self._select_neighbours(
                        self._vectors[neighbour], scored
                    )
            entry = found[0][1] if found else entry
        if level > self._max_level:
            self._max_level = level
            self._entry = node

    def query(self, vector: np.ndarray, k: int, ef: int | None = None) -> list[tuple[object, float]]:
        """Top-``k`` (key, distance) pairs, approximately nearest first."""
        if self._entry is None:
            return []
        vector = np.asarray(vector, dtype=np.float64)
        ef = max(ef or self.ef_search, k)
        entry = self._entry
        for lvl in range(self._max_level, 0, -1):
            if lvl < len(self._graph[entry]):
                entry = self._greedy_descend(vector, entry, lvl)
        found = self._search_level(vector, entry, ef, 0)
        return [(self._keys[node], dist) for dist, node in found[:k]]
