"""HNSW: hierarchical navigable small world graphs for approximate KNN.

DeepJoin (Dong et al., VLDB 2023) indexes its column embeddings with HNSW
(Malkov & Yashunin, TPAMI 2020). This is a from-scratch implementation of
the algorithm's core: a layered proximity graph where each node appears in
level 0 and, with geometrically decaying probability, in higher levels;
search greedily descends from the top layer and runs best-first beam search
(``ef``) at level 0.

This class implements the :class:`repro.search.backend.VectorIndex`
protocol (the ``"hnsw"`` backend), at parity with the exact index:

- ``metric="cosine"`` stores L2-normalized vectors and measures
  ``1 - cos`` (what :class:`repro.search.index.KnnIndex` defaults to), so
  the two backends are interchangeable behind ``TableSearcher``;
- ``add_many`` / ``remove_many`` support the lake's incremental deltas.
  Deletion is tombstone-based — the node stays in the graph as a traversal
  waypoint but never appears in results — with automatic compaction (a
  rebuild over the live nodes) once tombstones pass ``compact_ratio``;
- ``state_arrays`` / ``restore`` round-trip the full graph (adjacency,
  levels, entry point, RNG state), so a persisted lake reopens without
  re-running a single insertion.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro import obs
from repro.utils.rng import spawn_rng

# Same metric family the exact backend registers; registration is
# idempotent, so whichever module imports first wins the definition.
_QUERIES = obs.counter(
    "index_queries_total", "Vector-index query rows answered, by backend", ("backend",)
).labels(backend="hnsw")
_QUERY_MS = obs.histogram(
    "index_query_duration_ms",
    "Vector-index query_many latency in milliseconds, by backend",
    ("backend",),
).labels(backend="hnsw")


class HnswIndex:
    """Approximate nearest-neighbour search over dense vectors.

    Parameters follow the paper's notation: ``m`` is the maximum degree per
    node and layer, ``ef_construction`` the beam width while inserting,
    ``ef_search`` the default beam width while querying.
    """

    def __init__(self, dim: int, m: int = 8, ef_construction: int = 32,
                 ef_search: int = 24, seed: int = 11,
                 metric: str = "euclidean", compact_ratio: float = 0.25,
                 compact_min: int = 16):
        if metric not in ("cosine", "euclidean"):
            raise ValueError(f"unknown metric {metric!r}")
        self.dim = dim
        self.metric = metric
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self.compact_ratio = compact_ratio
        self.compact_min = compact_min
        self._rng = spawn_rng(seed, "hnsw")
        self._level_scale = 1.0 / math.log(max(m, 2))
        self._keys: list = []
        self._vectors: list[np.ndarray] = []
        #: per node: list of neighbour-id lists, one per level (0..node_level)
        self._graph: list[list[list[int]]] = []
        self._entry: int | None = None
        self._max_level = -1
        #: tombstoned node ids — kept in the graph for traversal, excluded
        #: from every result set, reclaimed by :meth:`_compact`.
        self._deleted: set[int] = set()
        #: key -> live node ids (supports duplicate keys, O(1) membership).
        self._nodes_by_key: dict = {}

    def __len__(self) -> int:
        return len(self._keys) - len(self._deleted)

    def __contains__(self, key) -> bool:
        return key in self._nodes_by_key

    def keys(self) -> list:
        """Live keys in insertion order (one entry per live node)."""
        return [
            key
            for node, key in enumerate(self._keys)
            if node not in self._deleted
        ]

    # ------------------------------------------------------------------ #
    def _prepare(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected dim {self.dim}, got {vector.shape}")
        if self.metric == "cosine":
            norm = np.linalg.norm(vector)
            if norm > 0.0:
                vector = vector / norm
        return vector

    def _distance(self, a: int, query: np.ndarray) -> float:
        if self.metric == "cosine":
            # Stored vectors and queries are pre-normalized.
            return float(1.0 - self._vectors[a] @ query)
        return float(np.linalg.norm(self._vectors[a] - query))

    def _pair_distance(self, a: int, b: int) -> float:
        return self._distance(a, self._vectors[b])

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_scale)

    def _greedy_descend(self, query: np.ndarray, start: int, level: int) -> int:
        """Follow the closest-neighbour chain on one level."""
        current = start
        current_dist = self._distance(current, query)
        improved = True
        while improved:
            improved = False
            for neighbour in self._graph[current][level]:
                d = self._distance(neighbour, query)
                if d < current_dist:
                    current, current_dist = neighbour, d
                    improved = True
        return current

    def _search_level(self, query: np.ndarray, entry: int, ef: int,
                      level: int) -> list[tuple[float, int]]:
        """Best-first beam search; returns (distance, node) sorted ascending.

        Tombstoned nodes participate in the beam (they are traversal
        waypoints — removing them from consideration would sever paths the
        graph was built around); callers filter them from results.
        """
        visited = {entry}
        entry_dist = self._distance(entry, query)
        candidates = [(entry_dist, entry)]           # min-heap
        best: list[tuple[float, int]] = [(-entry_dist, entry)]  # max-heap
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            for neighbour in self._graph[node][level]:
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                d = self._distance(neighbour, query)
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbour))
                    heapq.heappush(best, (-d, neighbour))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, n) for d, n in best)

    def _select_neighbours(self, base: np.ndarray,
                           candidates: list[tuple[float, int]]) -> list[int]:
        """Malkov's neighbour-selection heuristic.

        Walk candidates by increasing distance to ``base`` and keep one only
        if it is closer to ``base`` than to every neighbour already kept.
        Without this, clustered data prunes away all long-range links and
        recall collapses across clusters (the known failure of naive
        closest-m selection).
        """
        kept: list[int] = []
        for dist, node in sorted(candidates):
            if len(kept) >= self.m:
                break
            ok = True
            for other in kept:
                if self._pair_distance(node, other) < dist:
                    ok = False
                    break
            if ok:
                kept.append(node)
        # Backfill with the closest skipped candidates if under-full.
        if len(kept) < self.m:
            for _, node in sorted(candidates):
                if node not in kept:
                    kept.append(node)
                if len(kept) >= self.m:
                    break
        return kept

    # ------------------------------------------------------------------ #
    def add(self, key, vector: np.ndarray) -> None:
        vector = self._prepare(vector)
        node = len(self._keys)
        level = self._random_level()
        self._keys.append(key)
        self._vectors.append(vector)
        self._graph.append([[] for _ in range(level + 1)])
        self._nodes_by_key.setdefault(key, []).append(node)

        if self._entry is None:
            self._entry = node
            self._max_level = level
            return

        entry = self._entry
        # Descend levels above the new node's level greedily.
        for lvl in range(self._max_level, level, -1):
            if lvl < len(self._graph[entry]):
                entry = self._greedy_descend(vector, entry, lvl)
        # Connect on each shared level.
        for lvl in range(min(level, self._max_level), -1, -1):
            found = self._search_level(vector, entry, self.ef_construction, lvl)
            neighbours = self._select_neighbours(vector, found)
            self._graph[node][lvl] = list(neighbours)
            for neighbour in neighbours:
                links = self._graph[neighbour][lvl]
                links.append(node)
                if len(links) > self.m:
                    # Re-prune with the same diversity heuristic.
                    scored = [
                        (self._pair_distance(other, neighbour), other)
                        for other in links
                    ]
                    self._graph[neighbour][lvl] = self._select_neighbours(
                        self._vectors[neighbour], scored
                    )
            entry = found[0][1] if found else entry
        if level > self._max_level:
            self._max_level = level
            self._entry = node

    #: Backwards-compatible alias — the original interface named this
    #: ``insert``.
    insert = add

    def add_many(self, items) -> None:
        """Insert a batch of (key, vector) pairs in order."""
        for key, vector in items:
            self.add(key, vector)

    # ------------------------------------------------------------------ #
    def remove_many(self, keys) -> int:
        """Tombstone every node stored under ``keys``; returns nodes removed.

        Dead nodes stay in the graph as traversal waypoints (queries filter
        them); once they exceed ``compact_ratio`` of the graph the index
        compacts — a rebuild over the live nodes only.
        """
        removed = 0
        for key in set(keys):
            nodes = self._nodes_by_key.pop(key, None)
            if not nodes:
                continue
            self._deleted.update(nodes)
            removed += len(nodes)
        if removed and self._should_compact():
            self._compact()
        return removed

    def remove(self, key) -> int:
        return self.remove_many([key])

    def _should_compact(self) -> bool:
        dead = len(self._deleted)
        return dead >= self.compact_min and dead >= self.compact_ratio * len(
            self._keys
        )

    def _compact(self) -> None:
        """Rebuild the graph over live nodes, reclaiming tombstones."""
        pairs = [
            (self._keys[node], self._vectors[node])
            for node in range(len(self._keys))
            if node not in self._deleted
        ]
        self._keys = []
        self._vectors = []
        self._graph = []
        self._entry = None
        self._max_level = -1
        self._deleted = set()
        self._nodes_by_key = {}
        for key, vector in pairs:
            self.add(key, vector)

    # ------------------------------------------------------------------ #
    def query(self, vector: np.ndarray, k: int, ef: int | None = None) -> list[tuple[object, float]]:
        """Top-``k`` (key, distance) pairs, approximately nearest first."""
        if len(self) == 0 or k <= 0:
            return []
        vector = self._prepare(vector)
        # Widen the beam for tombstones *proportionally*: if a fraction f of
        # the graph is dead, a beam of ef/(1-f) still yields ~ef live
        # candidates. The additive bound keeps tiny graphs exact; the ratio
        # bound keeps large lakes at a constant factor (≤ ~4/3 under the
        # default compact_ratio) instead of degrading toward brute force.
        base = max(ef or self.ef_search, k)
        dead = len(self._deleted)
        if dead:
            live_fraction = 1.0 - dead / len(self._keys)
            ef = min(base + dead, math.ceil(base / max(live_fraction, 0.25)))
        else:
            ef = base
        entry = self._entry
        for lvl in range(self._max_level, 0, -1):
            if lvl < len(self._graph[entry]):
                entry = self._greedy_descend(vector, entry, lvl)
        found = self._search_level(vector, entry, ef, 0)
        return [
            (self._keys[node], dist)
            for dist, node in found
            if node not in self._deleted
        ][:k]

    def query_many(
        self, matrix: np.ndarray, k: int, ef: int | None = None
    ) -> list[list[tuple[object, float]]]:
        """Per-row :meth:`query` over a query matrix.

        Graph traversal is inherently sequential per query; the batched
        entry point exists for protocol parity so callers written against
        ``query_many`` run unchanged on either backend.
        """
        queries = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        with obs.span("index.query", backend="hnsw") as timed:
            results = [self.query(row, k, ef=ef) for row in queries]
        if obs.enabled():
            _QUERIES.inc(len(results))
            _QUERY_MS.observe(timed.duration_ms)
        return results

    # ------------------------------------------------------------------ #
    def state_keys(self) -> list:
        """Node-id-aligned keys for persistence — includes tombstoned
        nodes, so a save never forces a compaction (deletes stay amortized
        under ``compact_ratio`` even when every mutation is persisted)."""
        return list(self._keys)

    def state_arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        """Persistable graph state, node-aligned with :meth:`state_keys`.

        The adjacency is flattened as ``(levels, neighbour_lens,
        neighbours)`` — counted ragged arrays — tombstones ride in the
        ``deleted`` array, and the RNG state rides along so post-restore
        inserts draw the same level sequence a never-persisted index
        would.
        """
        n = len(self._keys)
        neighbour_lens: list[int] = []
        neighbours: list[int] = []
        for node_links in self._graph:
            for links in node_links:
                neighbour_lens.append(len(links))
                neighbours.extend(links)
        arrays = {
            "vectors": np.asarray(self._vectors, dtype=np.float64).reshape(
                n, self.dim
            )
            if n
            else np.zeros((0, self.dim), dtype=np.float64),
            "levels": np.asarray(
                [len(links) for links in self._graph], dtype=np.int64
            ),
            "neighbour_lens": np.asarray(neighbour_lens, dtype=np.int64),
            "neighbours": np.asarray(neighbours, dtype=np.int64),
            "deleted": np.asarray(sorted(self._deleted), dtype=np.int64),
        }
        meta = {
            "metric": self.metric,
            "m": self.m,
            "ef_construction": self.ef_construction,
            "ef_search": self.ef_search,
            "seed": self.seed,
            "compact_ratio": self.compact_ratio,
            "compact_min": self.compact_min,
            "entry": -1 if self._entry is None else int(self._entry),
            "max_level": int(self._max_level),
            "rng_state": self._rng.bit_generator.state,
        }
        return arrays, meta

    @classmethod
    def restore(
        cls, dim: int, params: dict, keys: list, arrays: dict, meta: dict
    ) -> "HnswIndex":
        """Rebuild from :meth:`state_arrays` output without re-inserting."""
        build_args = {
            name: meta.get(name, params.get(name))
            for name in (
                "metric",
                "m",
                "ef_construction",
                "ef_search",
                "seed",
                "compact_ratio",
                "compact_min",
            )
            if meta.get(name, params.get(name)) is not None
        }
        index = cls(dim, **build_args)
        vectors = np.asarray(arrays["vectors"], dtype=np.float64).reshape(-1, dim)
        if vectors.shape[0] != len(keys):
            raise ValueError(
                f"persisted index has {vectors.shape[0]} nodes but "
                f"{len(keys)} keys"
            )
        index._keys = list(keys)
        index._vectors = [vectors[i] for i in range(vectors.shape[0])]
        levels = np.asarray(arrays["levels"], dtype=np.int64)
        neighbour_lens = np.asarray(arrays["neighbour_lens"], dtype=np.int64)
        neighbours = np.asarray(arrays["neighbours"], dtype=np.int64)
        graph: list[list[list[int]]] = []
        cursor_len = 0
        cursor_flat = 0
        for node in range(vectors.shape[0]):
            node_links: list[list[int]] = []
            for _ in range(int(levels[node])):
                count = int(neighbour_lens[cursor_len])
                cursor_len += 1
                node_links.append(
                    [int(x) for x in neighbours[cursor_flat : cursor_flat + count]]
                )
                cursor_flat += count
            graph.append(node_links)
        index._graph = graph
        entry = int(meta.get("entry", -1))
        index._entry = None if entry < 0 else entry
        index._max_level = int(meta.get("max_level", -1))
        index._deleted = {
            int(node) for node in arrays.get("deleted", np.empty(0, np.int64))
        }
        for node, key in enumerate(index._keys):
            if node not in index._deleted:
                index._nodes_by_key.setdefault(key, []).append(node)
        rng_state = meta.get("rng_state")
        if rng_state is not None:
            index._rng.bit_generator.state = rng_state
        return index
