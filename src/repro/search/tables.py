"""The paper's table-ranking algorithm over column embeddings (Fig. 6).

Definitions (verbatim from the figure, adapted to code):

- ``KNNSEARCH(c, k)`` — the ``k * 3`` nearest columns of column ``c``
  ("we try to get a lot more columns than k ... because multiple columns
  from a single table might match a given column").
- ``COLUMNNEARTABLES(c, k)`` — for each table appearing among those
  columns, the distance of its *closest* matching column.
- ``NEARTABLES(t, k)`` — the union of ``COLUMNNEARTABLES`` over all of
  ``t``'s columns, gathering per-table matched-column lists.
- ``RANK1`` — prefer tables matching the *largest number* of query columns;
- ``RANK2`` — tie-break by the *smallest sum* of column distances.

The searcher is index-agnostic: any :class:`repro.search.backend.VectorIndex`
(the exact matrix backend, HNSW, ...) plugs in via the ``backend`` spec, and
``NEARTABLES`` runs on the batched ``query_many`` — one index call for all
of a query table's columns instead of one Python round-trip per column.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.search.backend import (
    IndexSpec,
    VectorIndex,
    make_index,
    make_sharded_index,
    normalize_index_spec,
    stable_shard,
)


@dataclass(frozen=True)
class ColumnEntry:
    """Identifies one indexed column."""

    table: str
    column: str


@dataclass(frozen=True)
class TableMatch:
    """One scored table hit with its per-column evidence.

    The scored twin of the bare table-name results: ``matches`` records,
    for every query column that matched this table, the closest indexed
    column and its distance — ``(query_column, table_column, distance)``
    triples in query-column order. ``n_matched`` is RANK1's matched-column
    count, ``distance_sum`` RANK2's tie-break sum; for single-column join
    results both collapse to the one best pair. Nothing here is lossy: the
    legacy name-only methods are thin projections of this shape, so scores
    propagate up to the Discovery API instead of being dropped.
    """

    table: str
    n_matched: int
    distance_sum: float
    matches: tuple[tuple[str, str, float], ...] = ()

    @property
    def best_distance(self) -> float:
        return min(
            (distance for _, _, distance in self.matches),
            default=self.distance_sum,
        )


class TableSearcher:
    """Column-embedding index + the Fig. 6 ranking procedure."""

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        candidate_factor: int = 3,
        backend: IndexSpec | str | None = None,
        n_shards: int = 1,
    ):
        self.dim = dim
        self.backend_spec = normalize_index_spec(backend, metric=metric)
        self.n_shards = n_shards
        if n_shards > 1:
            # Hash-partitioned column index: a table's columns co-locate
            # (routed by table name), queries fan + merge across shards
            # with shard-count-invariant rankings.
            self.index: VectorIndex = make_sharded_index(
                self.backend_spec,
                dim,
                n_shards,
                router=lambda entry: stable_shard(entry.table, n_shards),
            )
        else:
            self.index = make_index(self.backend_spec, dim)
        self.candidate_factor = candidate_factor
        self._columns_by_table: dict[str, list[ColumnEntry]] = defaultdict(list)
        #: Rows inserted through this searcher — a warm restore via
        #: :meth:`adopt_index` performs none, which the lake benches assert.
        self.insertions = 0

    # ------------------------------------------------------------------ #
    def adopt_index(self, index: VectorIndex) -> None:
        """Serve a prebuilt (e.g. persisted-and-restored) index as-is.

        Rebuilds the per-table bookkeeping from the index's own key list —
        zero insertions, so a warm lake open costs index *deserialization*
        only, never reconstruction.
        """
        if index.dim != self.dim:
            raise ValueError(
                f"index dim {index.dim} != searcher dim {self.dim}"
            )
        self.index = index
        self._columns_by_table = defaultdict(list)
        for entry in index.keys():
            self._columns_by_table[entry.table].append(entry)

    # ------------------------------------------------------------------ #
    def add_column(self, table: str, column: str, vector: np.ndarray) -> None:
        entry = ColumnEntry(table, column)
        self.index.add(entry, vector)
        self._columns_by_table[table].append(entry)
        self.insertions += 1

    def add_table(self, table: str, column_names: list[str], vectors: np.ndarray) -> None:
        """Index all of a table's columns in one bulk append."""
        entries = [ColumnEntry(table, name) for name in column_names]
        self.index.add_many(
            [
                (entry, np.asarray(vector, dtype=np.float64))
                for entry, vector in zip(entries, vectors)
            ]
        )
        self._columns_by_table[table].extend(entries)
        self.insertions += len(entries)

    def remove_table(self, table: str) -> int:
        """Drop every indexed column of ``table``; returns columns removed.

        One batch removal against the backend — the incremental-delete
        primitive for :class:`repro.lake.catalog.LakeCatalog`.
        """
        entries = self._columns_by_table.pop(table, [])
        if not entries:
            return 0
        return self.index.remove_many(entries)

    def has_table(self, table: str) -> bool:
        return table in self._columns_by_table

    def table_names(self) -> list[str]:
        return list(self._columns_by_table)

    @property
    def n_tables(self) -> int:
        return len(self._columns_by_table)

    # ------------------------------------------------------------------ #
    def knn_columns(
        self, vector: np.ndarray, k: int, exclude_table: str | None = None
    ) -> list[tuple[ColumnEntry, float]]:
        """KNNSEARCH: the ``k * candidate_factor`` nearest columns."""
        want = k * self.candidate_factor
        raw = self.index.query(
            np.asarray(vector, dtype=np.float64),
            want + self._excluded_count(exclude_table),
        )
        out = [
            (entry, distance)
            for entry, distance in raw
            if exclude_table is None or entry.table != exclude_table
        ]
        return out[:want]

    def _excluded_count(self, exclude_table: str | None) -> int:
        """Over-fetch allowance to survive the exclude filter. (.get, not
        [], so the defaultdict is never polluted with an empty entry.)"""
        if exclude_table is None:
            return 0
        return len(self._columns_by_table.get(exclude_table, ()))

    def column_near_entries_many(
        self,
        vectors: np.ndarray,
        k: int,
        exclude_table: str | None = None,
    ) -> list[dict[str, tuple[ColumnEntry, float]]]:
        """Batched COLUMNNEARTABLES, evidence-preserving: one ``query_many``
        call answers every query column, then each row reduces to
        table -> (closest column entry, distance) — the *which column
        matched* information the scored API surfaces as join evidence."""
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        want = k * self.candidate_factor
        batched = self.index.query_many(
            matrix, want + self._excluded_count(exclude_table)
        )
        results: list[dict[str, tuple[ColumnEntry, float]]] = []
        for hits in batched:
            nearest: dict[str, tuple[ColumnEntry, float]] = {}
            kept = 0
            for entry, distance in hits:
                if exclude_table is not None and entry.table == exclude_table:
                    continue
                if kept >= want:
                    break
                kept += 1
                known = nearest.get(entry.table)
                if known is None or distance < known[1]:
                    nearest[entry.table] = (entry, distance)
            results.append(nearest)
        return results

    def column_near_tables_many(
        self,
        vectors: np.ndarray,
        k: int,
        exclude_table: str | None = None,
    ) -> list[dict[str, float]]:
        """Batched COLUMNNEARTABLES: table -> closest-column distance per
        query row (the entry-stripped view of
        :meth:`column_near_entries_many`)."""
        return [
            {table: distance for table, (_, distance) in nearest.items()}
            for nearest in self.column_near_entries_many(vectors, k, exclude_table)
        ]

    def column_near_tables(
        self, vector: np.ndarray, k: int, exclude_table: str | None = None
    ) -> dict[str, float]:
        """COLUMNNEARTABLES: table -> distance of its closest column."""
        return self.column_near_tables_many(
            np.asarray(vector, dtype=np.float64)[None, :], k, exclude_table
        )[0]

    def near_tables_scored(
        self,
        named_vectors: "Sequence[tuple[str, np.ndarray]]",
        k: int,
        exclude_table: str | None = None,
    ) -> list[TableMatch]:
        """NEARTABLES + RANK1/RANK2 with per-column match evidence.

        ``named_vectors`` pairs each query column's *name* with its vector
        so every hit records which query column matched which indexed
        column at what distance. Sorted by the paper's two-stage rank:
        most matched columns first, then smallest summed distance. All
        column lookups ride one batched :meth:`column_near_entries_many`
        call.
        """
        matrix = np.stack([vector for _, vector in named_vectors])
        per_column = self.column_near_entries_many(matrix, k, exclude_table)
        evidence: dict[str, list[tuple[str, str, float]]] = defaultdict(list)
        for (query_column, _), nearest in zip(named_vectors, per_column):
            for table, (entry, distance) in nearest.items():
                evidence[table].append((query_column, entry.column, float(distance)))
        ranked = [
            TableMatch(
                table=table,
                n_matched=len(matches),
                distance_sum=float(sum(d for _, _, d in matches)),
                matches=tuple(matches),
            )
            for table, matches in evidence.items()
        ]
        ranked.sort(key=lambda match: (-match.n_matched, match.distance_sum))
        return ranked

    def near_tables(
        self,
        query_vectors: np.ndarray,
        k: int,
        exclude_table: str | None = None,
    ) -> list[tuple[str, int, float]]:
        """NEARTABLES + RANK1/RANK2 over a query table's column vectors.

        Returns ``(table, n_matched_columns, distance_sum)`` — the
        evidence-stripped projection of :meth:`near_tables_scored`, so the
        two can never rank differently.
        """
        matrix = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        named = [(str(i), row) for i, row in enumerate(matrix)]
        return [
            (match.table, match.n_matched, match.distance_sum)
            for match in self.near_tables_scored(named, k, exclude_table)
        ]

    def search_tables_scored(
        self,
        named_vectors: "Sequence[tuple[str, np.ndarray]]",
        k: int,
        exclude_table: str | None = None,
    ) -> list[TableMatch]:
        """Top-``k`` scored hits (with evidence) under the Fig. 6 ranking."""
        return self.near_tables_scored(named_vectors, k, exclude_table)[:k]

    def search_tables(
        self, query_vectors: np.ndarray, k: int, exclude_table: str | None = None
    ) -> list[str]:
        """Top-``k`` table names under the Fig. 6 ranking."""
        return [t for t, _, _ in self.near_tables(query_vectors, k, exclude_table)][:k]

    def join_tables_scored(
        self,
        named_vectors: "Sequence[tuple[str, np.ndarray]]",
        k: int,
        exclude_table: str | None = None,
    ) -> list[TableMatch]:
        """Scored join search over one or more query columns.

        Each table is scored by its single closest column across *all* the
        query columns (the paper's join ranking, generalized to every-column
        queries); the evidence is that one best
        ``(query_column, table_column, distance)`` pair. Ascending by best
        distance over the whole ``k * candidate_factor`` candidate pool —
        untruncated, so callers can post-filter without starving their
        top-k.
        """
        matrix = np.stack([vector for _, vector in named_vectors])
        per_column = self.column_near_entries_many(matrix, k, exclude_table)
        best: dict[str, tuple[str, str, float]] = {}
        for (query_column, _), nearest in zip(named_vectors, per_column):
            for table, (entry, distance) in nearest.items():
                known = best.get(table)
                if known is None or distance < known[2]:
                    best[table] = (query_column, entry.column, float(distance))
        ranked = [
            TableMatch(
                table=table,
                n_matched=1,
                distance_sum=match[2],
                matches=(match,),
            )
            for table, match in best.items()
        ]
        ranked.sort(key=lambda match: match.distance_sum)
        return ranked

    def search_by_column(
        self, query_vector: np.ndarray, k: int, exclude_table: str | None = None
    ) -> list[str]:
        """Join-style search: rank tables by their closest single column."""
        nearest = self.column_near_tables(query_vector, k, exclude_table)
        ranked = sorted(nearest.items(), key=lambda item: item[1])
        return [table for table, _ in ranked[:k]]
