"""The paper's table-ranking algorithm over column embeddings (Fig. 6).

Definitions (verbatim from the figure, adapted to code):

- ``KNNSEARCH(c, k)`` — the ``k * 3`` nearest columns of column ``c``
  ("we try to get a lot more columns than k ... because multiple columns
  from a single table might match a given column").
- ``COLUMNNEARTABLES(c, k)`` — for each table appearing among those
  columns, the distance of its *closest* matching column.
- ``NEARTABLES(t, k)`` — the union of ``COLUMNNEARTABLES`` over all of
  ``t``'s columns, gathering per-table matched-column lists.
- ``RANK1`` — prefer tables matching the *largest number* of query columns;
- ``RANK2`` — tie-break by the *smallest sum* of column distances.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.search.index import KnnIndex


@dataclass(frozen=True)
class ColumnEntry:
    """Identifies one indexed column."""

    table: str
    column: str


class TableSearcher:
    """Column-embedding index + the Fig. 6 ranking procedure."""

    def __init__(self, dim: int, metric: str = "cosine", candidate_factor: int = 3):
        self.index = KnnIndex(dim, metric=metric)
        self.candidate_factor = candidate_factor
        self._columns_by_table: dict[str, list[tuple[ColumnEntry, np.ndarray]]] = (
            defaultdict(list)
        )

    # ------------------------------------------------------------------ #
    def add_column(self, table: str, column: str, vector: np.ndarray) -> None:
        entry = ColumnEntry(table, column)
        self.index.add(entry, vector)
        self._columns_by_table[table].append((entry, np.asarray(vector, dtype=np.float64)))

    def add_table(self, table: str, column_names: list[str], vectors: np.ndarray) -> None:
        """Index all of a table's columns in one bulk append."""
        pairs = [
            (ColumnEntry(table, name), np.asarray(vector, dtype=np.float64))
            for name, vector in zip(column_names, vectors)
        ]
        self.index.add_many(pairs)
        self._columns_by_table[table].extend(pairs)

    def remove_table(self, table: str) -> int:
        """Drop every indexed column of ``table``; returns columns removed.

        One compaction pass over the index — the incremental-delete primitive
        for :class:`repro.lake.catalog.LakeCatalog`.
        """
        entries = self._columns_by_table.pop(table, [])
        if not entries:
            return 0
        return self.index.remove_many([entry for entry, _ in entries])

    def has_table(self, table: str) -> bool:
        return table in self._columns_by_table

    def table_names(self) -> list[str]:
        return list(self._columns_by_table)

    @property
    def n_tables(self) -> int:
        return len(self._columns_by_table)

    # ------------------------------------------------------------------ #
    def knn_columns(
        self, vector: np.ndarray, k: int, exclude_table: str | None = None
    ) -> list[tuple[ColumnEntry, float]]:
        """KNNSEARCH: the ``k * candidate_factor`` nearest columns."""
        want = k * self.candidate_factor
        # Over-fetch to survive the exclude filter. (.get, not [], so the
        # defaultdict is never polluted with an empty excluded-table entry.)
        excluded = len(self._columns_by_table.get(exclude_table, ())) if exclude_table else 0
        raw = self.index.query(vector, want + excluded)
        out = [
            (entry, distance)
            for entry, distance in raw
            if exclude_table is None or entry.table != exclude_table
        ]
        return out[:want]

    def column_near_tables(
        self, vector: np.ndarray, k: int, exclude_table: str | None = None
    ) -> dict[str, float]:
        """COLUMNNEARTABLES: table -> distance of its closest column."""
        nearest: dict[str, float] = {}
        for entry, distance in self.knn_columns(vector, k, exclude_table):
            if entry.table not in nearest or distance < nearest[entry.table]:
                nearest[entry.table] = distance
        return nearest

    def near_tables(
        self,
        query_vectors: np.ndarray,
        k: int,
        exclude_table: str | None = None,
    ) -> list[tuple[str, int, float]]:
        """NEARTABLES + RANK1/RANK2 over a query table's column vectors.

        Returns ``(table, n_matched_columns, distance_sum)`` sorted by the
        paper's two-stage rank: most matched columns first, then smallest
        summed distance.
        """
        matches: dict[str, list[float]] = defaultdict(list)
        for vector in np.atleast_2d(query_vectors):
            for table, distance in self.column_near_tables(vector, k, exclude_table).items():
                matches[table].append(distance)
        ranked = [
            (table, len(distances), float(sum(distances)))
            for table, distances in matches.items()
        ]
        ranked.sort(key=lambda item: (-item[1], item[2]))
        return ranked

    def search_tables(
        self, query_vectors: np.ndarray, k: int, exclude_table: str | None = None
    ) -> list[str]:
        """Top-``k`` table names under the Fig. 6 ranking."""
        return [t for t, _, _ in self.near_tables(query_vectors, k, exclude_table)][:k]

    def search_by_column(
        self, query_vector: np.ndarray, k: int, exclude_table: str | None = None
    ) -> list[str]:
        """Join-style search: rank tables by their closest single column."""
        nearest = self.column_near_tables(query_vector, k, exclude_table)
        ranked = sorted(nearest.items(), key=lambda item: item[1])
        return [table for table, _ in ranked[:k]]
