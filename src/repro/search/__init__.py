"""Search substrate: pluggable nearest-neighbour index backends (exact,
HNSW) behind one `VectorIndex` protocol, the Figure-6 table ranking
algorithm, and retrieval metrics (mean F1 / P@k / R@k, F1-vs-k curves)."""

from repro.search.backend import (
    IndexSpec,
    ShardedIndex,
    VectorIndex,
    available_backends,
    make_index,
    make_sharded_index,
    normalize_index_spec,
    register_backend,
    restore_index,
    stable_shard,
    validate_index_spec,
)
from repro.search.hnsw import HnswIndex
from repro.search.index import KnnIndex
from repro.search.tables import ColumnEntry, TableSearcher
from repro.search.metrics import (
    SearchResult,
    evaluate_search,
    f1_at_k,
    precision_recall_at_k,
)

__all__ = [
    "IndexSpec",
    "ShardedIndex",
    "VectorIndex",
    "available_backends",
    "make_index",
    "make_sharded_index",
    "normalize_index_spec",
    "register_backend",
    "restore_index",
    "stable_shard",
    "validate_index_spec",
    "HnswIndex",
    "KnnIndex",
    "ColumnEntry",
    "TableSearcher",
    "SearchResult",
    "evaluate_search",
    "f1_at_k",
    "precision_recall_at_k",
]
