"""Search substrate: nearest-neighbour indexes, the Figure-6 table ranking
algorithm, and retrieval metrics (mean F1 / P@k / R@k, F1-vs-k curves)."""

from repro.search.hnsw import HnswIndex
from repro.search.index import KnnIndex
from repro.search.tables import ColumnEntry, TableSearcher
from repro.search.metrics import (
    SearchResult,
    evaluate_search,
    f1_at_k,
    precision_recall_at_k,
)

__all__ = [
    "HnswIndex",
    "KnnIndex",
    "ColumnEntry",
    "TableSearcher",
    "SearchResult",
    "evaluate_search",
    "f1_at_k",
    "precision_recall_at_k",
]
