"""Frozen sentence embeddings: the SBERT / FastText stand-in.

The paper uses two *frozen pretrained* text encoders:

- SBERT ``all-MiniLM-L12-v2`` to embed "the top 100 unique values in a column
  concatenated into a single sentence" (§IV-C1);
- FastText word vectors inside WarpGate and DeepJoin.

We cannot ship those checkpoints offline, so we substitute a deterministic
**feature-hashed bag-of-features encoder**: each word and character n-gram is
hashed into a fixed random direction in R^dim (hash-seeded Gaussian), the
directions are summed with IDF-like down-weighting of very frequent features
and L2-normalized. Two texts that share words/character patterns embed close
together, which is exactly the property the paper exploits (cell values of
the same *semantic domain* — municipality names, country codes, dates —
share surface patterns far more than unrelated domains do).

The substitution is documented in DESIGN.md §1. It preserves:

- frozen-ness (no training anywhere);
- lexical-semantic neighborhood structure via shared tokens/n-grams;
- sensitivity to *value order* when embedding whole tables row-wise (the
  paper's row-shuffle probe: SBERT is order-sensitive, sketches are not) —
  we provide an optional positional mixing term for that probe.
"""

from __future__ import annotations

import math

import numpy as np

from repro.table.schema import Column
from repro.utils.hashing import hash_string


def column_sentence(column: Column, top_values: int = 100) -> str:
    """The paper's column-to-sentence rule: top-N unique values joined."""
    seen: list[str] = []
    seen_set: set[str] = set()
    for value in column.non_null_values():
        if value not in seen_set:
            seen_set.add(value)
            seen.append(value)
        if len(seen) >= top_values:
            break
    return " ".join(seen)


class HashedSentenceEncoder:
    """Deterministic frozen text encoder (SBERT substitute).

    Features are lower-cased words plus character trigrams; each feature's
    direction is a unit Gaussian vector seeded by its stable 64-bit hash.
    Feature weights decay with in-sentence frequency (sub-linear tf) and
    common-token damping via a log length normalizer.
    """

    def __init__(self, dim: int = 128, ngram: int = 3, use_ngrams: bool = True,
                 positional: bool = False):
        self.dim = dim
        self.ngram = ngram
        self.use_ngrams = use_ngrams
        #: When True, features are mixed with a position-dependent rotation,
        #: making embeddings order-sensitive (used for the §IV-C3 probe where
        #: SBERT is *not* invariant to row order).
        self.positional = positional
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def _feature_vector(self, feature: str) -> np.ndarray:
        cached = self._cache.get(feature)
        if cached is not None:
            return cached
        seed = hash_string(feature) & 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        vec = rng.standard_normal(self.dim)
        vec /= np.linalg.norm(vec) + 1e-12
        if len(self._cache) < 200_000:
            self._cache[feature] = vec
        return vec

    def _features(self, text: str) -> list[str]:
        words = text.lower().split()
        feats = [f"w:{w}" for w in words]
        if self.use_ngrams:
            for word in words:
                padded = f"^{word}$"
                for i in range(max(1, len(padded) - self.ngram + 1)):
                    feats.append(f"g:{padded[i:i + self.ngram]}")
        return feats

    def encode(self, text: str) -> np.ndarray:
        """L2-normalized embedding of ``text`` in ``R^dim``."""
        feats = self._features(text)
        if not feats:
            return np.zeros(self.dim)
        counts: dict[str, int] = {}
        order: dict[str, int] = {}
        for position, feat in enumerate(feats):
            counts[feat] = counts.get(feat, 0) + 1
            order.setdefault(feat, position)
        out = np.zeros(self.dim)
        for feat, count in counts.items():
            weight = 1.0 + math.log(count)
            vec = self._feature_vector(feat)
            if self.positional:
                shift = order[feat] % self.dim
                vec = np.roll(vec, shift)
            out += weight * vec
        norm = np.linalg.norm(out)
        return out / norm if norm > 0 else out

    def encode_many(self, texts: list[str]) -> np.ndarray:
        """Stacked embeddings, shape ``(len(texts), dim)``."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.encode(t) for t in texts])

    def encode_column(self, column: Column, top_values: int = 100) -> np.ndarray:
        """Column embedding via the top-100-unique-values sentence (§IV-C1)."""
        return self.encode(column_sentence(column, top_values))

    def encode_word(self, word: str) -> np.ndarray:
        """Single-word embedding (the FastText role in WarpGate/DeepJoin)."""
        return self.encode(word)
