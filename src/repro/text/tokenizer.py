"""WordPiece-style tokenizer.

BERT tokenizes text into sub-words using a greedy longest-match-first
algorithm over a learned vocabulary, with non-initial pieces prefixed by
``##``. We reproduce that algorithm and train the vocabulary directly from
the synthetic corpus with the standard frequency-driven WordPiece induction
(start from characters, iteratively add the most frequent merges).

The paper feeds the model a lower-cased "input string" of table metadata and
column names joined by ``[SEP]``; this tokenizer provides exactly the pieces
needed for that input layer plus whole-column masking (every token of a
column name is maskable as a unit).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"

SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN)

_WORD_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


def basic_tokenize(text: str) -> list[str]:
    """Lower-case and split into words / punctuation marks (BERT 'uncased')."""
    return _WORD_RE.findall(text.lower())


@dataclass
class Vocabulary:
    """Token <-> id mapping with BERT's special tokens at fixed low ids."""

    tokens: list[str] = field(default_factory=lambda: list(SPECIAL_TOKENS))

    def __post_init__(self) -> None:
        for i, special in enumerate(SPECIAL_TOKENS):
            if self.tokens[i] != special:
                raise ValueError(
                    f"vocabulary must start with {SPECIAL_TOKENS}, got {self.tokens[:5]}"
                )
        self._ids = {tok: i for i, tok in enumerate(self.tokens)}
        if len(self._ids) != len(self.tokens):
            raise ValueError("duplicate tokens in vocabulary")

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def id_of(self, token: str) -> int:
        return self._ids.get(token, self._ids[UNK_TOKEN])

    def token_of(self, index: int) -> str:
        return self.tokens[index]

    @property
    def pad_id(self) -> int:
        return self._ids[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._ids[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._ids[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._ids[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._ids[MASK_TOKEN]


def train_vocabulary(
    texts: Iterable[str],
    vocab_size: int = 4096,
    min_frequency: int = 2,
) -> Vocabulary:
    """Induce a WordPiece vocabulary from raw texts.

    Algorithm: collect word frequencies; seed the vocabulary with all single
    characters (plus their ``##`` continuations); then repeatedly add the most
    frequent adjacent-piece merge until ``vocab_size`` is reached. This is the
    BPE-style induction that WordPiece training reduces to when likelihood is
    approximated by frequency.
    """
    word_counts: Counter[str] = Counter()
    for text in texts:
        word_counts.update(basic_tokenize(text))

    # Words as piece sequences: first char bare, the rest ## continuations.
    splits: dict[str, list[str]] = {
        word: [word[0]] + [f"##{c}" for c in word[1:]]
        for word in word_counts
        if word
    }

    vocab: list[str] = list(SPECIAL_TOKENS)
    seen = set(vocab)
    for pieces in splits.values():
        for piece in pieces:
            if piece not in seen:
                seen.add(piece)
                vocab.append(piece)

    def merge_counts() -> Counter[tuple[str, str]]:
        counts: Counter[tuple[str, str]] = Counter()
        for word, pieces in splits.items():
            frequency = word_counts[word]
            for a, b in zip(pieces, pieces[1:]):
                counts[(a, b)] += frequency
        return counts

    while len(vocab) < vocab_size:
        counts = merge_counts()
        if not counts:
            break
        (left, right), best_count = counts.most_common(1)[0]
        if best_count < min_frequency:
            break
        merged = left + right[2:] if right.startswith("##") else left + right
        for word, pieces in splits.items():
            out: list[str] = []
            i = 0
            while i < len(pieces):
                if i + 1 < len(pieces) and pieces[i] == left and pieces[i + 1] == right:
                    out.append(merged)
                    i += 2
                else:
                    out.append(pieces[i])
                    i += 1
            splits[word] = out
        if merged not in seen:
            seen.add(merged)
            vocab.append(merged)

    return Vocabulary(vocab[:max(vocab_size, len(SPECIAL_TOKENS))])


class WordPieceTokenizer:
    """Greedy longest-match-first WordPiece tokenization (BERT's algorithm)."""

    def __init__(self, vocabulary: Vocabulary, max_word_chars: int = 64):
        self.vocabulary = vocabulary
        self.max_word_chars = max_word_chars

    @classmethod
    def train(cls, texts: Iterable[str], vocab_size: int = 4096,
              min_frequency: int = 2) -> "WordPieceTokenizer":
        return cls(train_vocabulary(texts, vocab_size, min_frequency))

    def tokenize_word(self, word: str) -> list[str]:
        """Sub-word pieces for one word, or ``[UNK]`` when not coverable."""
        if len(word) > self.max_word_chars:
            return [UNK_TOKEN]
        pieces: list[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while start < end:
                candidate = word[start:end]
                if start > 0:
                    candidate = f"##{candidate}"
                if candidate in self.vocabulary:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [UNK_TOKEN]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> list[str]:
        out: list[str] = []
        for word in basic_tokenize(text):
            out.extend(self.tokenize_word(word))
        return out

    def encode(self, text: str) -> list[int]:
        return [self.vocabulary.id_of(t) for t in self.tokenize(text)]

    def decode(self, ids: Sequence[int]) -> str:
        words: list[str] = []
        for index in ids:
            token = self.vocabulary.token_of(int(index))
            if token in SPECIAL_TOKENS:
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)
