"""Text substrate: tokenizer and frozen sentence embeddings.

- :mod:`repro.text.tokenizer` — a WordPiece-style sub-word tokenizer with a
  vocabulary trained from a corpus; replaces BERT's 30k-token vocabulary at a
  scale the synthetic lake needs (~2-4k tokens). Special tokens follow BERT:
  ``[PAD] [UNK] [CLS] [SEP] [MASK]``.
- :mod:`repro.text.sbert` — :class:`~repro.text.sbert.HashedSentenceEncoder`,
  the deterministic stand-in for SBERT ``all-MiniLM-L12-v2`` (and FastText in
  the DeepJoin/WarpGate baselines). It embeds text via feature-hashed words +
  character n-grams with IDF-style weighting, so lexically/semantically
  similar value sets land near each other without any training.
"""

from repro.text.tokenizer import SPECIAL_TOKENS, Vocabulary, WordPieceTokenizer
from repro.text.sbert import HashedSentenceEncoder, column_sentence

__all__ = [
    "SPECIAL_TOKENS",
    "Vocabulary",
    "WordPieceTokenizer",
    "HashedSentenceEncoder",
    "column_sentence",
]
