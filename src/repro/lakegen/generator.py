"""Seeded synthetic-lake generator with planted, exactly-known ground truth.

The generator emits a *manifest* — a compact, byte-reproducible JSON
document — that fully determines a synthetic lake: every table's schema,
seed, and relationship to its partners. Tables are materialized lazily
from the manifest (:func:`materialize_table` / :func:`iter_tables`), so a
million-column lake never has to exist in memory at once and two runs of
``generate`` with the same :class:`LakeSpec` produce byte-identical
manifests *and* cell-identical tables.

Three relationship kinds are planted, each with exactly-known truth:

- **join** — a partner table shares a controlled fraction of the base
  table's key-column distincts. Key distincts are formulaic
  (``"{table}:k{j}"``), the partner reuses the parent's first ``shared``
  key strings and mints the rest under its own prefix, so the distinct-set
  intersection is *exactly* ``shared`` — no sampling noise, no accidental
  cross-table collisions.
- **union** — a partner is the parent with its columns permuted (recorded
  permutation) and its rows reshuffled: same column contents, different
  presentation.
- **subset** — a partner is a recorded row-sample of the parent (same
  column order), so the partner's cells are a verbatim subset of the
  parent's rows.

Every planted pair lands in ``manifest["truth"]`` with the parameters the
tests verify against (overlap fraction, permutation, row indices).

Per-table seeds derive from the lake seed and the table *name* via the
process-stable FNV hash (:func:`repro.utils.hashing.hash_string`), so
materialization is order-independent: any table can be produced on its
own, in any process, without replaying the generator's RNG stream.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.table.schema import Table, table_from_rows
from repro.utils.hashing import hash_string

#: Manifest schema identifier; bump on incompatible layout changes.
MANIFEST_FORMAT = "lakegen/v1"

#: Column kinds a generated table can carry. ``key`` columns hold the
#: formulaic join-key distincts; ``text`` columns hold per-column
#: vocabularies with Zipf-skewed frequencies; ``int``/``float`` are numeric.
COLUMN_KINDS = ("key", "text", "int", "float")


@dataclass(frozen=True)
class LakeSpec:
    """Knobs for one synthetic lake. Everything downstream — manifest,
    tables, truth — is a pure function of this spec.

    ``columns`` is the total column budget across all tables (base +
    partners); generation stops at the first table that reaches it.
    ``join/union/subset_fraction`` set how many base tables get a partner
    of each kind; ``overlaps`` is cycled across join pairs so the lake
    carries easy and hard joins at every scale. ``skew`` is the Zipf
    exponent for value frequencies (hot values dominate, as in real lakes).
    """

    columns: int = 10_000
    seed: int = 7
    rows: int = 30
    min_cols: int = 3
    max_cols: int = 6
    join_fraction: float = 0.15
    union_fraction: float = 0.15
    subset_fraction: float = 0.10
    overlaps: tuple[float, ...] = (0.25, 0.5, 0.75)
    subset_rows: float = 0.5
    text_fraction: float = 0.5
    skew: float = 1.1

    def __post_init__(self) -> None:
        if self.columns < self.min_cols:
            raise ValueError(
                f"column budget {self.columns} below min_cols {self.min_cols}"
            )
        if not 1 <= self.min_cols <= self.max_cols:
            raise ValueError(
                f"need 1 <= min_cols <= max_cols, got "
                f"{self.min_cols}..{self.max_cols}"
            )
        if self.rows < 4:
            raise ValueError(f"rows must be >= 4, got {self.rows}")
        for label, fraction in (
            ("join_fraction", self.join_fraction),
            ("union_fraction", self.union_fraction),
            ("subset_fraction", self.subset_fraction),
            ("text_fraction", self.text_fraction),
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {fraction}")
        if not self.overlaps or not all(
            0.0 < o <= 1.0 for o in self.overlaps
        ):
            raise ValueError(
                f"overlaps must be non-empty fractions in (0, 1], got "
                f"{self.overlaps}"
            )
        if not 0.0 < self.subset_rows <= 1.0:
            raise ValueError(
                f"subset_rows must be in (0, 1], got {self.subset_rows}"
            )

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["overlaps"] = list(self.overlaps)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "LakeSpec":
        payload = dict(payload)
        payload["overlaps"] = tuple(payload.get("overlaps", cls.overlaps))
        return cls(**payload)


# --------------------------------------------------------------------- #
# Seeding — every stream is named, so materialization never depends on
# generation order or on any other table's draws.
# --------------------------------------------------------------------- #
def _seed(lake_seed: int, name: str, stream: str) -> int:
    return hash_string(f"lakegen:{lake_seed}:{name}:{stream}")


def _scheduled(index: int, fraction: float) -> bool:
    """Evenly spread scheduling: base table ``index`` gets a partner iff
    the running quota ``floor(i * fraction)`` ticks up at ``i + 1``."""
    return math.floor((index + 1) * fraction) > math.floor(index * fraction)


def _draw_cols(spec: LakeSpec, rng: np.random.Generator) -> list[list]:
    """Draw one table's column plan: ``[kind, cardinality]`` pairs.

    Column 0 is always the join-key column. Cardinalities are drawn per
    column (skewed lakes have wide cardinality spread); numeric columns
    carry 0 — their values are draws, not a vocabulary.
    """
    n_cols = int(rng.integers(spec.min_cols, spec.max_cols + 1))
    key_card = int(rng.integers(max(4, spec.rows // 2), spec.rows + 1))
    cols: list[list] = [["key", key_card]]
    for _ in range(n_cols - 1):
        if rng.random() < spec.text_fraction:
            card = int(rng.integers(2, spec.rows + 1))
            cols.append(["text", card])
        else:
            cols.append(["int" if rng.random() < 0.5 else "float", 0])
    return cols


def generate_manifest(spec: LakeSpec) -> dict:
    """Plan a whole lake: table entries, ingest order, planted truth.

    No cell data is generated here — only schemas, seeds, and recorded
    decisions (permutations, row samples, shared-key counts). The result
    is pure-Python JSON types throughout, so :func:`manifest_bytes` is
    byte-stable.
    """
    tables: dict[str, dict] = {}
    order: list[str] = []
    truth: dict[str, list[dict]] = {"join": [], "union": [], "subset": []}
    total_columns = 0
    base_index = 0
    join_index = 0

    def add(name: str, entry: dict, n_cols: int) -> None:
        nonlocal total_columns
        tables[name] = entry
        order.append(name)
        total_columns += n_cols

    while total_columns < spec.columns:
        name = f"t{base_index:06d}"
        schema_rng = np.random.default_rng(_seed(spec.seed, name, "schema"))
        cols = _draw_cols(spec, schema_rng)
        entry = {
            "kind": "base",
            "seed": _seed(spec.seed, name, "data"),
            "n_rows": spec.rows,
            "cols": cols,
        }
        add(name, entry, len(cols))

        if total_columns < spec.columns and _scheduled(
            base_index, spec.join_fraction
        ):
            partner = f"{name}_j"
            overlap = spec.overlaps[join_index % len(spec.overlaps)]
            join_index += 1
            key_card = cols[0][1]
            shared = max(1, int(round(overlap * key_card)))
            partner_rng = np.random.default_rng(
                _seed(spec.seed, partner, "schema")
            )
            partner_cols = _draw_cols(spec, partner_rng)
            # The partner's key pool is the same size as the parent's, of
            # which the first `shared` distincts are the parent's strings.
            partner_cols[0][1] = key_card
            add(partner, {
                "kind": "join",
                "seed": _seed(spec.seed, partner, "data"),
                "parent": name,
                "n_rows": spec.rows,
                "cols": partner_cols,
                "shared": shared,
            }, len(partner_cols))
            truth["join"].append({
                "query": name,
                "candidate": partner,
                "query_column": "key",
                "candidate_column": "key",
                "shared": shared,
                "query_distinct": key_card,
                "candidate_distinct": key_card,
                "overlap": shared / key_card,
            })

        if total_columns < spec.columns and _scheduled(
            base_index, spec.union_fraction
        ):
            partner = f"{name}_u"
            perm_rng = np.random.default_rng(
                _seed(spec.seed, partner, "schema")
            )
            perm = [int(i) for i in perm_rng.permutation(len(cols))]
            add(partner, {
                "kind": "union",
                "seed": _seed(spec.seed, partner, "data"),
                "parent": name,
                "perm": perm,
            }, len(cols))
            truth["union"].append({
                "query": partner,
                "candidate": name,
                "perm": perm,
            })

        if total_columns < spec.columns and _scheduled(
            base_index, spec.subset_fraction
        ):
            partner = f"{name}_s"
            sample_rng = np.random.default_rng(
                _seed(spec.seed, partner, "schema")
            )
            n_sample = max(1, int(round(spec.subset_rows * spec.rows)))
            indices = sorted(
                int(i) for i in sample_rng.choice(
                    spec.rows, size=n_sample, replace=False
                )
            )
            add(partner, {
                "kind": "subset",
                "seed": _seed(spec.seed, partner, "data"),
                "parent": name,
                "indices": indices,
            }, len(cols))
            truth["subset"].append({
                "query": partner,
                "candidate": name,
                "n_rows": len(indices),
                "parent_rows": spec.rows,
            })

        base_index += 1

    return {
        "format": MANIFEST_FORMAT,
        "spec": spec.to_dict(),
        "order": order,
        "tables": tables,
        "truth": truth,
        "totals": {
            "tables": len(tables),
            "columns": total_columns,
            "base_tables": base_index,
            "join_pairs": len(truth["join"]),
            "union_pairs": len(truth["union"]),
            "subset_pairs": len(truth["subset"]),
        },
    }


# --------------------------------------------------------------------- #
# Serialization — byte-stable by construction.
# --------------------------------------------------------------------- #
def manifest_bytes(manifest: dict) -> bytes:
    """Canonical encoding: compact separators, sorted keys, one trailing
    newline. Two identical manifests are byte-identical on disk."""
    return (
        json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def write_manifest(manifest: dict, path: str | os.PathLike) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_bytes(manifest_bytes(manifest))
    return p


def load_manifest(path: str | os.PathLike) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    fmt = manifest.get("format")
    if fmt != MANIFEST_FORMAT:
        raise ValueError(
            f"unsupported manifest format {fmt!r} (expected "
            f"{MANIFEST_FORMAT!r})"
        )
    return manifest


# --------------------------------------------------------------------- #
# Materialization — any table, standalone, from its manifest entry.
# --------------------------------------------------------------------- #
def _key_distincts(name: str, cardinality: int) -> list[str]:
    """The formulaic key vocabulary. Per-table prefixes make cross-table
    intersections exactly the *planted* sharing and nothing else."""
    return [f"{name}:k{j}" for j in range(cardinality)]


def _fill_column(
    distincts: list[str], n_rows: int, rng: np.random.Generator, skew: float
) -> list[str]:
    """``n_rows`` cells covering *every* distinct at least once, the
    remainder Zipf-skewed toward the head, in shuffled row order.

    The full-coverage guarantee is what makes planted overlaps exact: the
    column's distinct set equals ``distincts`` verbatim.
    """
    if len(distincts) > n_rows:
        raise ValueError(
            f"cardinality {len(distincts)} exceeds {n_rows} rows"
        )
    values = list(distincts)
    extra = n_rows - len(values)
    if extra > 0:
        ranks = np.arange(1, len(distincts) + 1, dtype=np.float64)
        weights = ranks ** -skew
        weights /= weights.sum()
        picks = rng.choice(len(distincts), size=extra, p=weights)
        values.extend(distincts[int(i)] for i in picks)
    rng.shuffle(values)
    return values


def _materialize_base_like(
    name: str, entry: dict, skew: float, description: str
) -> Table:
    """Build a base or join-partner table from its column plan."""
    rng = np.random.default_rng(entry["seed"])
    n_rows = entry["n_rows"]
    columns: list[tuple[str, list[str]]] = []
    for j, (kind, cardinality) in enumerate(entry["cols"]):
        header = "key" if kind == "key" else f"c{j}"
        if kind == "key":
            if entry["kind"] == "join":
                parent = entry["parent"]
                shared = entry["shared"]
                distincts = _key_distincts(parent, shared) + [
                    f"{name}:k{j2}" for j2 in range(cardinality - shared)
                ]
            else:
                distincts = _key_distincts(name, cardinality)
            values = _fill_column(distincts, n_rows, rng, skew)
        elif kind == "text":
            distincts = [f"{name}:c{j}:v{v}" for v in range(cardinality)]
            values = _fill_column(distincts, n_rows, rng, skew)
        elif kind == "int":
            values = [str(int(v)) for v in rng.integers(0, 1_000_000, n_rows)]
        elif kind == "float":
            values = [f"{v:.4f}" for v in rng.normal(0.0, 1000.0, n_rows)]
        else:  # pragma: no cover - manifest corruption
            raise ValueError(f"unknown column kind {kind!r}")
        columns.append((header, values))
    rows = [
        [values[i] for _, values in columns] for i in range(n_rows)
    ]
    return table_from_rows(
        name, [header for header, _ in columns], rows, description=description
    )


def materialize_table(manifest: dict, name: str) -> Table:
    """Materialize one table — base or partner — from the manifest alone."""
    entry = manifest["tables"].get(name)
    if entry is None:
        raise KeyError(f"manifest has no table {name!r}")
    spec = manifest["spec"]
    kind = entry["kind"]
    if kind in ("base", "join"):
        description = (
            f"synthetic base table {name}"
            if kind == "base"
            else f"synthetic join partner of {entry['parent']}"
        )
        return _materialize_base_like(name, entry, spec["skew"], description)
    parent = materialize_table(manifest, entry["parent"])
    if kind == "union":
        rng = np.random.default_rng(entry["seed"])
        row_order = rng.permutation(parent.n_rows)
        columns = [parent.columns[i] for i in entry["perm"]]
        rows = [[col.values[int(i)] for col in columns] for i in row_order]
        return table_from_rows(
            name,
            [col.name for col in columns],
            rows,
            description=f"synthetic union partner of {entry['parent']}",
        )
    if kind == "subset":
        rows = [parent.row(i) for i in entry["indices"]]
        return table_from_rows(
            name,
            parent.header,
            rows,
            description=f"synthetic subset of {entry['parent']}",
        )
    raise ValueError(f"unknown table kind {kind!r}")  # pragma: no cover


def iter_tables(manifest: dict) -> Iterator[Table]:
    """All tables in ingest order, materialized one at a time."""
    for name in manifest["order"]:
        yield materialize_table(manifest, name)


def make_distractor(spec: LakeSpec, name: str, seed: int) -> Table:
    """A fresh base-shaped table *outside* the manifest (fresh key prefix,
    so it intersects nothing planted). The churn driver ingests these as
    distractors without perturbing the recorded ground truth."""
    schema_rng = np.random.default_rng(_seed(seed, name, "schema"))
    entry = {
        "kind": "base",
        "seed": _seed(seed, name, "data"),
        "n_rows": spec.rows,
        "cols": _draw_cols(spec, schema_rng),
    }
    return _materialize_base_like(
        name, entry, spec.skew, description=f"churn distractor {name}"
    )
