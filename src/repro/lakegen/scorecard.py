"""Scorecards: planted-truth recall + server-scraped latency, with deltas.

A scorecard distills one :func:`~repro.lakegen.driver.run_scenario`
record into the few numbers that tell you whether the lake got better or
worse: recall@k per discovery mode against the generator's planted
truth, latency quantiles per query mode, cache and ingest counters, and
the slowest observed stages.

Latency comes **exclusively** from the scraped ``/v1/metrics`` envelope
(or the identical in-process registry snapshot) — never from client-side
timers, which would fold in transport and driver overhead. As a guard
against ever silently drifting from the server's own math,
:func:`latency_quantiles` *re-estimates* every quantile from the scraped
cumulative buckets using the same interpolation walk
:class:`repro.obs.metrics` uses, and raises :class:`ScorecardError` if
the re-estimate disagrees with the exposed ``p50``/``p95``/``p99``
beyond tolerance — the scraped histogram must reconcile with itself.

``results/lakegen_scorecard.json`` keeps a bounded run history so
:func:`build_scorecard` (and ``scripts/summarize_results.py``) can print
regression deltas between the two most recent runs.
"""

from __future__ import annotations

import math
import os

from repro.utils.io import read_json, write_json

DEFAULT_PATH = os.path.join("results", "lakegen_scorecard.json")
SCORECARD_FORMAT = "lakegen-scorecard/v1"

#: Runs retained in the scorecard file's history.
HISTORY_LIMIT = 20

#: Relative tolerance for bucket-vs-exposed quantile reconciliation. The
#: walk is deterministic, so agreement should be exact up to float noise;
#: the slack only absorbs representation round-trips through JSON.
RECONCILE_RTOL = 1e-6


class ScorecardError(Exception):
    """A scraped metrics envelope that cannot be turned into a scorecard
    (missing series, malformed buckets, or failed quantile reconciliation)."""


# --------------------------------------------------------------------- #
# Quantiles, re-derived from the scraped buckets
# --------------------------------------------------------------------- #
def _parse_edge(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        raise ScorecardError(f"unparseable bucket edge {raw!r}") from None


def _bucket_quantile(
    edges: "list[float]", counts: "list[int]", total: int, q: float
) -> "float | None":
    """The exact interpolation walk of ``_HistogramChild.quantile``, run
    over de-accumulated scraped buckets."""
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        below = cumulative
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(edges):
                return edges[-1]
            lower = edges[index - 1] if index > 0 else 0.0
            upper = edges[index]
            fraction = (rank - below) / bucket_count
            return lower + (upper - lower) * fraction
    return edges[-1]


def _reconciled(label: str, exposed, recomputed, quantile: str) -> float:
    if exposed is None and recomputed is None:
        return None
    if exposed is None or recomputed is None:
        raise ScorecardError(
            f"{label}: exposed {quantile}={exposed!r} but bucket "
            f"re-estimate says {recomputed!r}"
        )
    if not math.isclose(
        exposed, recomputed, rel_tol=RECONCILE_RTOL, abs_tol=1e-9
    ):
        raise ScorecardError(
            f"{label}: exposed {quantile}={exposed} does not reconcile "
            f"with bucket re-estimate {recomputed}"
        )
    return exposed


def latency_quantiles(
    metrics: dict, name: str = "lake_query_duration_ms"
) -> dict:
    """Per-label-set latency summary from a scraped metrics envelope.

    Returns ``{label_key: {labels, count, sum, p50, p95, p99}}`` where
    ``label_key`` is the sorted ``k=v`` join (``"mode=join"``). Every
    quantile is cross-checked against a re-estimate from the cumulative
    buckets; a mismatch raises :class:`ScorecardError`.
    """
    series = metrics.get(name)
    if series is None:
        raise ScorecardError(f"metrics envelope has no {name!r} histogram")
    out: dict = {}
    for value in series.get("values", []):
        labels = value.get("labels", {})
        label_key = (
            ",".join(f"{k}={labels[k]}" for k in sorted(labels)) or "all"
        )
        buckets = value.get("buckets")
        if not isinstance(buckets, dict) or "+Inf" not in buckets:
            raise ScorecardError(
                f"{name}{{{label_key}}}: malformed buckets {buckets!r}"
            )
        finite = sorted(
            (
                (_parse_edge(edge), int(cumulative))
                for edge, cumulative in buckets.items()
                if edge != "+Inf"
            ),
            key=lambda pair: pair[0],
        )
        edges = [edge for edge, _ in finite]
        total = int(buckets["+Inf"])
        # De-accumulate: cumulative-per-edge back to per-bucket counts,
        # with the +Inf overflow bucket appended.
        counts = []
        previous = 0
        for _, cumulative in finite:
            counts.append(cumulative - previous)
            previous = cumulative
        counts.append(total - previous)
        if any(count < 0 for count in counts):
            raise ScorecardError(
                f"{name}{{{label_key}}}: non-monotonic cumulative buckets"
            )
        entry = {"labels": labels, "count": total, "sum": value.get("sum")}
        for quantile, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            entry[quantile] = _reconciled(
                f"{name}{{{label_key}}}",
                value.get(quantile),
                _bucket_quantile(edges, counts, total, q),
                quantile,
            )
        out[label_key] = entry
    return out


def counter_total(metrics: dict, name: str, **labels) -> "float | None":
    """Sum a counter's values, optionally filtered by label equality.
    ``None`` when the series is absent (e.g. obs disabled)."""
    series = metrics.get(name)
    if series is None:
        return None
    total = 0.0
    for value in series.get("values", []):
        got = value.get("labels", {})
        if all(got.get(k) == v for k, v in labels.items()):
            total += float(value.get("value", 0.0))
    return total


def slowest_stages(slow_queries: "list[dict]", top: int = 3) -> list[dict]:
    """For the ``top`` slowest logged queries, the dominant stage: the
    direct child span of the root with the largest duration."""
    ranked = sorted(
        (entry for entry in slow_queries if entry.get("spans")),
        key=lambda entry: entry.get("total_ms", 0.0),
        reverse=True,
    )[:top]
    out = []
    for entry in ranked:
        children = entry["spans"].get("children", [])
        dominant = max(
            children, key=lambda span: span.get("duration_ms", 0.0)
        ) if children else None
        out.append(
            {
                "query": entry.get("query"),
                "mode": entry.get("mode"),
                "total_ms": entry.get("total_ms"),
                "stage": dominant.get("name") if dominant else None,
                "stage_ms": dominant.get("duration_ms") if dominant else None,
            }
        )
    return out


# --------------------------------------------------------------------- #
# Building + persisting the scorecard
# --------------------------------------------------------------------- #
def _summarize(run: dict) -> dict:
    """One run record -> one history entry."""
    metrics = run.get("metrics", {}).get("metrics", {})
    enabled = run.get("metrics", {}).get("enabled", False)
    latency = latency_quantiles(metrics) if enabled else {}
    counters = {
        "queries_total": counter_total(metrics, "lake_queries_total"),
        "cache_hits": counter_total(metrics, "lake_cache_hits_total"),
        "cache_misses": counter_total(metrics, "lake_cache_misses_total"),
        "tables_added": counter_total(metrics, "lake_tables_added_total"),
        "rows_appended": counter_total(metrics, "lake_rows_appended_total"),
    }
    churn = run.get("churn", {})
    return {
        "unix_time": run.get("unix_time"),
        "target": run.get("target", {}).get("kind"),
        "metrics_source": run.get("target", {}).get("metrics_source"),
        "tables": run.get("totals", {}).get("tables"),
        "columns": run.get("totals", {}).get("columns"),
        "recall": run.get("recall", {}),
        "latency_ms": latency,
        "counters": counters,
        "slowest": slowest_stages(run.get("slow_queries", [])),
        "churn": {
            "ops": churn.get("spec", {}).get("ops"),
            "counts": churn.get("counts"),
            "errors": churn.get("errors"),
            "appended_rows": churn.get("appended_rows"),
            "distractors_ingested": churn.get("distractors_ingested"),
        },
        "wall_s": run.get("wall_s"),
    }


def _delta(new, old) -> "float | None":
    if new is None or old is None:
        return None
    return round(new - old, 6)


def _deltas(latest: dict, previous: "dict | None") -> dict:
    if previous is None:
        return {}
    out: dict = {"recall": {}, "latency_ms": {}}
    for mode, stats in latest.get("recall", {}).items():
        prior = previous.get("recall", {}).get(mode, {})
        out["recall"][mode] = {
            "recall_at_k": _delta(
                stats.get("recall_at_k"), prior.get("recall_at_k")
            ),
            "mrr": _delta(stats.get("mrr"), prior.get("mrr")),
        }
    for label_key, stats in latest.get("latency_ms", {}).items():
        prior = previous.get("latency_ms", {}).get(label_key, {})
        out["latency_ms"][label_key] = {
            quantile: _delta(stats.get(quantile), prior.get(quantile))
            for quantile in ("p50", "p95", "p99")
        }
    return out


def build_scorecard(run: dict, previous: "dict | None" = None) -> dict:
    """A run record (+ optionally the prior summary) -> scorecard dict."""
    if run.get("format") != "lakegen-run/v1":
        raise ScorecardError(
            f"not a lakegen run record: format={run.get('format')!r}"
        )
    latest = _summarize(run)
    return {
        "format": SCORECARD_FORMAT,
        "experiment": "lakegen_scorecard",
        "latest": latest,
        "previous": previous,
        "deltas": _deltas(latest, previous),
    }


def write_scorecard(run: dict, path: str = DEFAULT_PATH) -> dict:
    """Fold a run into the scorecard file, keeping bounded history.

    Reads any existing scorecard at ``path``, shifts its ``latest`` into
    the history, computes deltas of the new run against it, and writes
    the merged file back. Returns the written scorecard.
    """
    history: list = []
    previous = None
    if os.path.exists(path):
        try:
            existing = read_json(path)
        except (ValueError, OSError):
            existing = None
        if isinstance(existing, dict) and existing.get("format") == SCORECARD_FORMAT:
            previous = existing.get("latest")
            history = list(existing.get("runs", []))
            if previous is not None:
                history.append(previous)
    scorecard = build_scorecard(run, previous)
    scorecard["runs"] = history[-(HISTORY_LIMIT - 1):]
    write_json(path, scorecard)
    return scorecard


__all__ = [
    "DEFAULT_PATH",
    "HISTORY_LIMIT",
    "SCORECARD_FORMAT",
    "ScorecardError",
    "build_scorecard",
    "counter_total",
    "latency_quantiles",
    "slowest_stages",
    "write_scorecard",
]
