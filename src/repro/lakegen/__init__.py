"""`repro.lakegen` — synthetic-lake scenario harness: scale, churn, scorecards.

The first subsystem that *consumes* the whole lake stack instead of
extending it. Three layers:

- :mod:`repro.lakegen.generator` — a seeded synthetic-lake generator that
  emits tables at configurable scale (10k–1M columns) with *planted,
  exactly-known* joinable/unionable/subset ground truth recorded in a
  byte-reproducible manifest;
- :mod:`repro.lakegen.driver` — a churn workload driver replaying mixed
  operation blends (ingest/append/update/remove/query/refresh with
  configurable ratios, hot-key Zipf skew, burst arrival) against an
  in-process :class:`~repro.lake.service.LakeService` or a live server
  via :class:`~repro.lake.client.LakeClient`;
- :mod:`repro.lakegen.scorecard` — a scorecard reporter computing
  recall@k vs the planted truth and scraping ``/v1/metrics`` (latency
  quantiles, cache/ingest counters) and ``/v1/slow_queries`` (span-tree
  stage attribution) instead of re-deriving timings client-side, emitting
  ``results/lakegen_scorecard.json`` with deltas vs the previous run.

``python -m repro.lakegen generate | run | report`` is the CLI.
"""

from repro.lakegen.generator import (
    LakeSpec,
    generate_manifest,
    iter_tables,
    load_manifest,
    manifest_bytes,
    materialize_table,
    write_manifest,
)
from repro.lakegen.driver import (
    ChurnSpec,
    ClientTarget,
    ServiceTarget,
    build_service,
    evaluate_recall,
    provision,
    run_churn,
    run_scenario,
)
from repro.lakegen.scorecard import (
    ScorecardError,
    build_scorecard,
    counter_total,
    latency_quantiles,
    slowest_stages,
    write_scorecard,
)

__all__ = [
    "LakeSpec",
    "generate_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_bytes",
    "materialize_table",
    "iter_tables",
    "ChurnSpec",
    "ServiceTarget",
    "ClientTarget",
    "build_service",
    "provision",
    "run_churn",
    "evaluate_recall",
    "run_scenario",
    "ScorecardError",
    "latency_quantiles",
    "counter_total",
    "slowest_stages",
    "build_scorecard",
    "write_scorecard",
]
