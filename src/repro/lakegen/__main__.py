"""``python -m repro.lakegen`` — the scenario-harness CLI.

Three subcommands, composing the three layers of the package::

    # 1. Plant a lake with exactly-known truth (byte-deterministic):
    python -m repro.lakegen generate --columns 10000 --seed 7

    # 2. Replay churn + evaluate recall, in-process or against a server:
    python -m repro.lakegen run --manifest results/lakegen/manifest-c10000-s7.json
    python -m repro.lakegen run --manifest ... --server 127.0.0.1:8765

    # 3. Fold the run record into the scorecard (with deltas vs last run):
    python -m repro.lakegen report --run results/lakegen/run.json

``generate`` prints the manifest's SHA-256, so two invocations with the
same flags can be checked for byte-identity from the console alone.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys

from repro.lakegen.driver import (
    ChurnSpec,
    ClientTarget,
    DEFAULT_BLEND,
    ServiceTarget,
    build_service,
    parse_blend,
    run_scenario,
)
from repro.lakegen.generator import (
    LakeSpec,
    generate_manifest,
    load_manifest,
    manifest_bytes,
)
from repro.lakegen.scorecard import (
    DEFAULT_PATH as SCORECARD_PATH,
    ScorecardError,
    write_scorecard,
)
from repro.utils.io import read_json, write_json


def _log(message: str) -> None:
    print(message, flush=True)


def _parse_host_port(raw: str) -> tuple:
    host, _, port = raw.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--server expects HOST:PORT, got {raw!r}")
    return host, int(port)


# --------------------------------------------------------------------- #
def cmd_generate(args: argparse.Namespace) -> int:
    spec = LakeSpec(
        columns=args.columns,
        seed=args.seed,
        rows=args.rows,
        join_fraction=args.join_fraction,
        union_fraction=args.union_fraction,
        subset_fraction=args.subset_fraction,
    )
    manifest = generate_manifest(spec)
    raw = manifest_bytes(manifest)
    out = args.out or os.path.join(
        "results", "lakegen", f"manifest-c{spec.columns}-s{spec.seed}.json"
    )
    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    with open(out, "wb") as handle:
        handle.write(raw)
    totals = manifest["totals"]
    _log(f"manifest: {out} ({len(raw)} bytes)")
    _log(f"sha256:   {hashlib.sha256(raw).hexdigest()}")
    _log(
        f"planted:  {totals['tables']} tables / {totals['columns']} columns"
        f" — {totals['join_pairs']} join, {totals['union_pairs']} union,"
        f" {totals['subset_pairs']} subset pairs"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.manifest)
    churn = ChurnSpec(
        ops=args.ops,
        seed=args.seed,
        blend=parse_blend(args.blend) if args.blend else DEFAULT_BLEND,
        zipf=args.zipf,
        burst=args.burst,
        burst_pause_ms=args.burst_pause_ms,
        k=args.k,
    )
    if args.server:
        from repro.lake.client import LakeClient

        host, port = _parse_host_port(args.server)
        target = ClientTarget(LakeClient(host, port))
        _log(f"target: server {host}:{port} (metrics from /v1/metrics)")
    else:
        _log("target: in-process service (metrics from local registry)")
        service = build_service(
            manifest,
            dim=args.dim,
            num_perm=args.num_perm,
            vocab_size=args.vocab_size,
        )
        target = ServiceTarget(service)
    try:
        run = run_scenario(
            target,
            manifest,
            churn,
            k=args.k,
            max_eval=args.max_eval,
            skip_provision=args.skip_provision,
            log=_log,
        )
    finally:
        target.close()
    out = args.out or os.path.join("results", "lakegen", "run.json")
    write_json(out, run)
    _log(f"run record: {out} (wall {run['wall_s']}s)")
    for mode, stats in run["recall"].items():
        recall = stats["recall_at_k"]
        shown = f"{recall:.3f}" if recall is not None else "n/a"
        _log(f"  recall@{stats['k']} [{mode}]: {shown}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    run = read_json(args.run)
    try:
        card = write_scorecard(run, path=args.out)
    except ScorecardError as exc:
        _log(f"scorecard error: {exc}")
        return 1
    latest = card["latest"]
    _log(f"scorecard: {args.out}")
    for mode, stats in latest["recall"].items():
        recall = stats.get("recall_at_k")
        shown = f"{recall:.3f}" if recall is not None else "n/a"
        _log(f"  recall@{stats.get('k')} [{mode}]: {shown}")
    for label, stats in latest["latency_ms"].items():
        _log(
            f"  latency [{label}]: p50={stats['p50']:.3f}ms"
            f" p95={stats['p95']:.3f}ms p99={stats['p99']:.3f}ms"
            f" over {stats['count']} queries"
        )
    deltas = card.get("deltas") or {}
    for mode, delta in deltas.get("recall", {}).items():
        if delta.get("recall_at_k") is not None:
            _log(f"  delta recall [{mode}]: {delta['recall_at_k']:+.3f}")
    for label, delta in deltas.get("latency_ms", {}).items():
        if delta.get("p95") is not None:
            _log(f"  delta p95 [{label}]: {delta['p95']:+.3f}ms")
    return 0


# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lakegen",
        description="Synthetic-lake scenario harness: generate, run, report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="plant a synthetic lake with exact ground truth"
    )
    gen.add_argument("--columns", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--rows", type=int, default=30)
    gen.add_argument("--join-fraction", type=float, default=0.15)
    gen.add_argument("--union-fraction", type=float, default=0.15)
    gen.add_argument("--subset-fraction", type=float, default=0.10)
    gen.add_argument("--out", default=None, help="manifest path")
    gen.set_defaults(func=cmd_generate)

    run = sub.add_parser(
        "run", help="provision + churn + recall eval; writes the run record"
    )
    run.add_argument("--manifest", required=True)
    run.add_argument(
        "--server", default=None, help="HOST:PORT of a live lake server"
    )
    run.add_argument("--ops", type=int, default=200)
    run.add_argument("--seed", type=int, default=11)
    run.add_argument(
        "--blend", default=None, help="e.g. query=0.6,append=0.2,ingest=0.2"
    )
    run.add_argument("--zipf", type=float, default=1.1)
    run.add_argument("--burst", type=int, default=1)
    run.add_argument("--burst-pause-ms", type=float, default=0.0)
    run.add_argument("-k", type=int, default=10)
    run.add_argument("--max-eval", type=int, default=200)
    run.add_argument(
        "--skip-provision",
        action="store_true",
        help="assume the target already holds the manifest tables",
    )
    run.add_argument("--dim", type=int, default=32, help="in-process model dim")
    run.add_argument("--num-perm", type=int, default=16)
    run.add_argument("--vocab-size", type=int, default=600)
    run.add_argument("--out", default=None, help="run-record path")
    run.set_defaults(func=cmd_run)

    rep = sub.add_parser(
        "report", help="fold a run record into the scorecard, print deltas"
    )
    rep.add_argument("--run", required=True, help="run-record path")
    rep.add_argument("--out", default=SCORECARD_PATH)
    rep.set_defaults(func=cmd_report)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
