"""Churn workload driver: mixed operation blends against a live lake.

Replays a seeded stream of ``ingest`` / ``append`` / ``update`` /
``remove`` / ``query`` / ``refresh`` operations — with configurable
ratios, hot-table Zipf skew, and burst arrival — against either an
in-process :class:`~repro.lake.service.LakeService` (:class:`ServiceTarget`)
or a running server through :class:`~repro.lake.client.LakeClient`
(:class:`ClientTarget`). Both targets expose the same surface, so a
scenario runs identically in-process and over the wire; what differs is
where the scorecard scrapes its metrics from (``metrics_source``).

Churn is **truth-preserving by construction**:

- appends re-send copies of a table's *existing* rows (sketches merge,
  versions bump, embeddings go stale — but no distinct value is ever
  added, so every planted overlap stays exact);
- updates replace a table with its own rows in a reshuffled order (same
  distinct sets, version bump, full re-embed);
- removes only ever target *distractor* tables the churn itself ingested
  (fresh key prefixes that intersect nothing planted);
- some queries pin the version the driver tracked for the table,
  exercising the optimistic-concurrency surface under load.

So :func:`evaluate_recall` can score recall@k against the manifest's
planted truth *after* an arbitrary amount of churn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.core.config import TabSketchFMConfig
from repro.core.embed import TableEmbedder
from repro.core.inputs import InputEncoder
from repro.core.model import TabSketchFM
from repro.lake.api import API_VERSION, DiscoveryError, DiscoveryRequest
from repro.lake.catalog import LakeCatalog
from repro.lake.client import LakeClient
from repro.lake.service import LakeService
from repro.lakegen.generator import LakeSpec, make_distractor, materialize_table
from repro.sketch.pipeline import SketchConfig
from repro.table.schema import Table
from repro.text.tokenizer import WordPieceTokenizer

#: Operation kinds the blend can mix.
CHURN_OPS = ("query", "append", "ingest", "update", "remove", "refresh")

#: Default blend: query-heavy with a steady mutation trickle — the shape
#: of a lake under discovery traffic while ingest pipelines keep landing.
DEFAULT_BLEND = (
    ("query", 0.60),
    ("append", 0.15),
    ("ingest", 0.08),
    ("update", 0.05),
    ("remove", 0.05),
    ("refresh", 0.07),
)

_MODES = ("join", "union", "subset")


def parse_blend(raw: str) -> tuple:
    """``"query=0.6,append=0.2,..."`` -> blend tuple (weights need not
    sum to 1; the driver normalizes)."""
    blend = []
    for piece in raw.split(","):
        piece = piece.strip()
        if not piece:
            continue
        op, _, weight = piece.partition("=")
        op = op.strip()
        if op not in CHURN_OPS:
            raise ValueError(
                f"unknown churn op {op!r}; expected one of {CHURN_OPS}"
            )
        try:
            value = float(weight)
        except ValueError:
            raise ValueError(
                f"blend weight for {op!r} is not a number: {weight!r}"
            ) from None
        if value < 0:
            raise ValueError(f"blend weight for {op!r} must be >= 0")
        blend.append((op, value))
    if not blend or not any(weight > 0 for _, weight in blend):
        raise ValueError(f"blend {raw!r} has no positive weight")
    return tuple(blend)


@dataclass(frozen=True)
class ChurnSpec:
    """One churn workload: how many ops, in what blend, how skewed."""

    ops: int = 200
    seed: int = 11
    blend: tuple = DEFAULT_BLEND
    zipf: float = 1.1
    burst: int = 1
    burst_pause_ms: float = 0.0
    k: int = 10
    #: Fraction of queries served with ``allow_stale=True`` (the rest are
    #: strict and pay the lazy re-embed for anything appended).
    stale_fraction: float = 0.2
    #: Fraction of strict queries that also pin the driver-tracked version.
    pin_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ValueError(f"ops must be >= 0, got {self.ops}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        for op, _ in self.blend:
            if op not in CHURN_OPS:
                raise ValueError(f"unknown churn op {op!r}")
        if not any(weight > 0 for _, weight in self.blend):
            raise ValueError("blend needs at least one positive weight")
        if not 0.0 <= self.stale_fraction <= 1.0:
            raise ValueError(
                f"stale_fraction out of [0, 1]: {self.stale_fraction}"
            )
        if not 0.0 <= self.pin_fraction <= 1.0:
            raise ValueError(f"pin_fraction out of [0, 1]: {self.pin_fraction}")

    def to_dict(self) -> dict:
        return {
            "ops": self.ops,
            "seed": self.seed,
            "blend": [[op, weight] for op, weight in self.blend],
            "zipf": self.zipf,
            "burst": self.burst,
            "burst_pause_ms": self.burst_pause_ms,
            "k": self.k,
            "stale_fraction": self.stale_fraction,
            "pin_fraction": self.pin_fraction,
        }


# --------------------------------------------------------------------- #
# Targets — one surface, two transports.
# --------------------------------------------------------------------- #
class ServiceTarget:
    """Drive an in-process :class:`LakeService`. Metrics come straight off
    the process-default :mod:`repro.obs` registry."""

    kind = "service"
    metrics_source = "registry"

    def __init__(self, service: LakeService):
        self.service = service

    def discover(self, request: DiscoveryRequest):
        return self.service.discover(request)

    def add_tables(self, tables: "dict[str, Table]") -> None:
        self.service.add_tables(tables)

    def append_rows(self, name: str, rows) -> None:
        self.service.append_rows(name, rows)

    def update_table(self, table: Table) -> None:
        self.service.update_table(table)

    def remove_table(self, name: str) -> bool:
        return self.service.remove_table(name)

    def refresh_stale(self, names=None) -> list[str]:
        return self.service.refresh_stale(names)

    def stats(self) -> dict:
        return self.service.stats()

    def metrics(self) -> dict:
        """The same envelope ``GET /v1/metrics`` serves, locally."""
        return {
            "version": API_VERSION,
            "enabled": obs.enabled(),
            "metrics": obs.get_registry().collect(),
        }

    def slow_queries(self) -> list[dict]:
        return self.service.slow_log.snapshot()

    def close(self) -> None:
        pass


class ClientTarget:
    """Drive a live server through :class:`LakeClient`. Metrics are
    scraped from the server's ``/v1/metrics`` — never client-side."""

    kind = "server"
    metrics_source = "/v1/metrics"

    def __init__(self, client: LakeClient):
        self.client = client

    def discover(self, request: DiscoveryRequest):
        return self.client.query(request)

    def add_tables(self, tables: "dict[str, Table]") -> None:
        self.client.add_tables(list(tables.values()))

    def append_rows(self, name: str, rows) -> None:
        self.client.append_rows(name, rows)

    def update_table(self, table: Table) -> None:
        self.client.update_table(table)

    def remove_table(self, name: str) -> bool:
        try:
            self.client.remove_table(name)
            return True
        except DiscoveryError as exc:
            if exc.code == "not-found":
                return False
            raise

    def refresh_stale(self, names=None) -> list[str]:
        return self.client.refresh_stale(names)["refreshed"]

    def stats(self) -> dict:
        return self.client.stats()

    def metrics(self) -> dict:
        return self.client.metrics()

    def slow_queries(self) -> list[dict]:
        return self.client.slow_queries()

    def close(self) -> None:
        self.client.close()


# --------------------------------------------------------------------- #
# In-process stack construction + provisioning
# --------------------------------------------------------------------- #
def build_service(
    manifest: dict,
    dim: int = 32,
    num_perm: int = 16,
    vocab_size: int = 600,
    cache_size: int = 128,
    sample_tables: int = 64,
) -> LakeService:
    """A storeless lake stack sized for scenario runs: tokenizer trained
    on a deterministic sample of the manifest's tables, 1-layer trunk."""
    order = manifest["order"]
    stride = max(1, len(order) // sample_tables)
    texts: list[str] = []
    for name in order[::stride][:sample_tables]:
        table = materialize_table(manifest, name)
        texts.append(table.description)
        texts.extend(table.header)
        for column in table.columns:
            texts.extend(column.values[:3])
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=vocab_size)
    config = TabSketchFMConfig(
        vocab_size=len(tokenizer.vocabulary),
        dim=dim,
        num_layers=1,
        num_heads=2,
        ffn_dim=2 * dim,
        dropout=0.0,
        sketch=SketchConfig(num_perm=num_perm, seed=1),
        seed=0,
    )
    model = TabSketchFM(config)
    encoder = InputEncoder(config, tokenizer)
    catalog = LakeCatalog(TableEmbedder(model, encoder))
    return LakeService(catalog, cache_size=cache_size)


def provision(
    target,
    manifest: dict,
    batch: int = 64,
    log: "Callable[[str], None] | None" = None,
) -> int:
    """Ingest every manifest table into the target, in order, chunked."""
    order = manifest["order"]
    chunk: dict[str, Table] = {}
    done = 0
    for name in order:
        chunk[name] = materialize_table(manifest, name)
        if len(chunk) >= batch:
            target.add_tables(chunk)
            done += len(chunk)
            chunk = {}
            if log is not None and done % (batch * 8) == 0:
                log(f"provisioned {done}/{len(order)} tables")
    if chunk:
        target.add_tables(chunk)
        done += len(chunk)
    if log is not None:
        log(f"provisioned {done}/{len(order)} tables")
    return done


# --------------------------------------------------------------------- #
# Churn
# --------------------------------------------------------------------- #
def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -exponent
    return weights / weights.sum()


def run_churn(
    target,
    manifest: dict,
    churn: ChurnSpec,
    log: "Callable[[str], None] | None" = None,
) -> dict:
    """Replay one churn workload; returns the op/error/latency ledger.

    Client-side per-op wall times are recorded *only* as a sanity
    contrast — the scorecard's latency story comes from the server's own
    ``/v1/metrics`` histograms, which is the whole point.
    """
    rng = np.random.default_rng(churn.seed)
    spec = LakeSpec.from_dict(manifest["spec"])
    names = list(manifest["order"])
    # Hot-table skew: a seeded permutation assigns each member its rank,
    # so which tables are "hot" is stable for a given churn seed.
    ranked = [names[i] for i in rng.permutation(len(names))]
    weights = _zipf_weights(len(ranked), churn.zipf)
    ops = [op for op, _ in churn.blend]
    blend_weights = np.array([w for _, w in churn.blend], dtype=np.float64)
    blend_weights /= blend_weights.sum()

    versions = {name: 1 for name in names}
    distractors: list[str] = []
    n_distractors = 0
    counts = {op: 0 for op in CHURN_OPS}
    client_ms = {op: 0.0 for op in CHURN_OPS}
    errors: dict[str, int] = {}
    appended_rows = 0
    refreshed_tables = 0

    def pick_table() -> str:
        return ranked[int(rng.choice(len(ranked), p=weights))]

    def ingest_distractor() -> None:
        nonlocal n_distractors
        name = f"churn{n_distractors:05d}"
        n_distractors += 1
        target.add_tables({name: make_distractor(spec, name, churn.seed)})
        distractors.append(name)

    for step in range(churn.ops):
        op = ops[int(rng.choice(len(ops), p=blend_weights))]
        started = time.perf_counter()
        try:
            if op == "query":
                name = pick_table()
                mode = _MODES[int(rng.integers(len(_MODES)))]
                allow_stale = bool(rng.random() < churn.stale_fraction)
                pin = None
                if not allow_stale and rng.random() < churn.pin_fraction:
                    pin = versions.get(name)
                target.discover(DiscoveryRequest(
                    mode=mode,
                    k=churn.k,
                    table=name,
                    column="key" if mode == "join" else None,
                    allow_stale=allow_stale,
                    pin_version=pin,
                ))
            elif op == "append":
                name = pick_table()
                table = materialize_table(manifest, name)
                picks = rng.integers(0, table.n_rows, int(rng.integers(1, 6)))
                rows = [table.row(int(i)) for i in picks]
                target.append_rows(name, rows)
                versions[name] = versions.get(name, 1) + 1
                appended_rows += len(rows)
            elif op == "ingest":
                ingest_distractor()
            elif op == "update":
                name = pick_table()
                table = materialize_table(manifest, name)
                order = rng.permutation(table.n_rows)
                rows = [table.row(int(i)) for i in order]
                target.update_table(
                    Table(
                        name=table.name,
                        columns=[
                            type(col)(
                                col.name, [row[j] for row in rows]
                            )
                            for j, col in enumerate(table.columns)
                        ],
                        description=table.description,
                    )
                )
                versions[name] = versions.get(name, 1) + 1
            elif op == "remove":
                if distractors:
                    target.remove_table(distractors.pop())
                else:
                    # Nothing safe to drop yet: ingest instead (removing a
                    # manifest member would invalidate planted truth).
                    ingest_distractor()
                    op = "ingest"
            elif op == "refresh":
                refreshed_tables += len(target.refresh_stale())
        except DiscoveryError as exc:
            errors[exc.code] = errors.get(exc.code, 0) + 1
        counts[op] += 1
        client_ms[op] += (time.perf_counter() - started) * 1000.0
        if churn.burst_pause_ms > 0 and (step + 1) % churn.burst == 0:
            time.sleep(churn.burst_pause_ms / 1000.0)
        if log is not None and (step + 1) % 100 == 0:
            log(f"churn {step + 1}/{churn.ops} ops")

    return {
        "spec": churn.to_dict(),
        "counts": counts,
        "errors": errors,
        "client_ms": {op: round(ms, 3) for op, ms in client_ms.items()},
        "appended_rows": appended_rows,
        "distractors_ingested": n_distractors,
        "distractors_live": len(distractors),
        "refreshed_tables": refreshed_tables,
        "tracked_versions_max": max(versions.values()) if versions else 0,
    }


# --------------------------------------------------------------------- #
# Recall vs planted truth
# --------------------------------------------------------------------- #
def evaluate_recall(
    target,
    manifest: dict,
    k: int = 10,
    max_eval: int | None = None,
    seed: int = 17,
    log: "Callable[[str], None] | None" = None,
) -> dict:
    """recall@k and MRR per mode against the manifest's planted truth.

    Every evaluation query is a *member-name* query (leave-one-out is
    automatic) and strict (``allow_stale=False``), so any embedding left
    stale by churn is refreshed before it is scored — the eval proves the
    append path converges, not just that fresh ingests rank.
    """
    out: dict = {}
    for mode in _MODES:
        entries = manifest["truth"][mode]
        if max_eval is not None and len(entries) > max_eval:
            rng = np.random.default_rng(seed)
            picks = sorted(
                int(i) for i in rng.choice(
                    len(entries), size=max_eval, replace=False
                )
            )
            entries = [entries[i] for i in picks]
        hits = 0
        reciprocal = 0.0
        for entry in entries:
            request = DiscoveryRequest(
                mode=mode,
                k=k,
                table=entry["query"],
                column=entry.get("query_column") if mode == "join" else None,
            )
            result = target.discover(request)
            ranked = [hit.table for hit in result.hits]
            if entry["candidate"] in ranked:
                hits += 1
                reciprocal += 1.0 / (ranked.index(entry["candidate"]) + 1)
        evaluated = len(entries)
        out[mode] = {
            "k": k,
            "evaluated": evaluated,
            "planted": len(manifest["truth"][mode]),
            "recall_at_k": (hits / evaluated) if evaluated else None,
            "mrr": (reciprocal / evaluated) if evaluated else None,
        }
        if log is not None:
            recall = out[mode]["recall_at_k"]
            shown = f"{recall:.3f}" if recall is not None else "n/a"
            log(f"recall@{k} [{mode}]: {shown} over {evaluated} pairs")
    return out


# --------------------------------------------------------------------- #
# One full scenario
# --------------------------------------------------------------------- #
def run_scenario(
    target,
    manifest: dict,
    churn: ChurnSpec,
    k: int = 10,
    max_eval: int | None = 200,
    skip_provision: bool = False,
    provision_batch: int = 64,
    log: "Callable[[str], None] | None" = None,
) -> dict:
    """provision -> churn -> recall eval -> scrape; the raw run record.

    The record carries everything the scorecard needs: planted-truth
    recall, the target's ``/v1/metrics`` envelope (scraped *after* the
    workload, labeled with its source), the slow-query span trees, and
    the churn ledger. ``python -m repro.lakegen run`` writes it to disk;
    ``report`` turns it into the scorecard.
    """
    started = time.perf_counter()
    provisioned = 0
    if not skip_provision:
        provisioned = provision(
            target, manifest, batch=provision_batch, log=log
        )
    churn_record = run_churn(target, manifest, churn, log=log)
    recall = evaluate_recall(
        target, manifest, k=k, max_eval=max_eval, seed=churn.seed, log=log
    )
    return {
        "format": "lakegen-run/v1",
        "target": {
            "kind": target.kind,
            "metrics_source": target.metrics_source,
        },
        "spec": manifest["spec"],
        "totals": manifest["totals"],
        "provisioned": provisioned,
        "churn": churn_record,
        "recall": recall,
        "stats": target.stats(),
        "metrics": target.metrics(),
        "slow_queries": target.slow_queries(),
        "wall_s": round(time.perf_counter() - started, 3),
        "unix_time": time.time(),
    }
