"""The process-wide observability gate.

One boolean, read on every metric/log recording: when off, counters,
gauges, histograms, the slow-query log, and access-log lines all become
no-ops. **Spans are never gated** — they are the timing source the
Discovery API's :class:`~repro.lake.api.Timings` is projected from, so
they must stay live (they replace the ad-hoc ``perf_counter`` pairs the
service used to pay unconditionally; their cost is the baseline, not
overhead).

The default comes from ``$REPRO_OBS_ENABLED`` (unset/anything truthy =
on; ``0``/``false``/``no``/``off`` = off); :func:`set_enabled` flips it
at runtime — the lever ``bench_obs_overhead.py`` uses to measure the
instrumentation's cost against its own absence.
"""

from __future__ import annotations

import os

ENV_ENABLED = "REPRO_OBS_ENABLED"

_FALSEY = ("0", "false", "no", "off")


def _env_enabled() -> bool:
    raw = os.environ.get(ENV_ENABLED, "").strip().lower()
    if not raw:
        return True
    return raw not in _FALSEY


_enabled: bool = _env_enabled()


def enabled() -> bool:
    """Is metric/log recording currently on?"""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Flip the recording gate; returns the new state."""
    global _enabled
    _enabled = bool(value)
    return _enabled
