"""Bounded slow-query log: top-N requests by ``total_ms``.

A min-heap of capacity N keyed on total latency: recording is O(log N)
and a fast query that would not displace the current N-th slowest is a
single comparison. Entries are free-form dicts — the service records the
request's name/mode/k, its request id, the ``Timings`` projection, and
the full span-tree breakdown, so ``GET /v1/slow_queries`` explains
*where* a slow query's milliseconds went, not just that it was slow.

Recording honors the :mod:`repro.obs.runtime` gate; reads don't.
"""

from __future__ import annotations

import heapq
import threading
import time

from repro.obs import runtime

DEFAULT_CAPACITY = 32


class SlowQueryLog:
    """Keep the ``capacity`` slowest entries seen so far."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = 0
        self._lock = threading.Lock()

    def would_record(self, total_ms: float) -> bool:
        """Would an entry this slow displace anything? A cheap pre-check so
        callers skip building expensive entries (span-tree dicts) for the
        fast queries that dominate a healthy workload. Advisory under
        races — :meth:`record` re-checks under the lock."""
        if not runtime._enabled:
            return False
        heap = self._heap
        return len(heap) < self.capacity or float(total_ms) > heap[0][0]

    def record(self, entry: dict) -> bool:
        """Offer one entry (must carry ``total_ms``); True when kept."""
        if not runtime._enabled:
            return False
        total_ms = float(entry.get("total_ms", 0.0))
        with self._lock:
            self._seq += 1
            item = (total_ms, self._seq, dict(entry, recorded_at=time.time()))
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
                return True
            if total_ms > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)
                return True
        return False

    def snapshot(self) -> list[dict]:
        """Entries slowest-first (ties: most recent first)."""
        with self._lock:
            items = list(self._heap)
        items.sort(key=lambda item: (-item[0], -item[1]))
        return [dict(entry) for _, _, entry in items]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
