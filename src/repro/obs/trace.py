"""Structured tracing: a `Span` tree with contextvar propagation.

One trace covers server -> service -> catalog -> engine -> index: every
layer opens a :func:`span` and, because the current span rides a
:class:`contextvars.ContextVar`, nested calls attach as children without
any plumbing through signatures. Threads start from an empty context, so
a worker thread's spans never attach to another thread's trace — the
isolation the 8-thread service-concurrency harness asserts.

Spans are **never gated** by :mod:`repro.obs.runtime`: they are the
timing substrate the Discovery API's :class:`~repro.lake.api.Timings` is
projected from (``timings = projection of the span tree``), replacing
the ad-hoc ``time.perf_counter()`` pairs the service used to carry.
A span costs one object allocation and two clock reads — the same price
as the pair it replaced.

:func:`Span.add_child_duration` creates *synthetic* children with a
fixed duration — how ``discover_batch`` attributes each query's
amortized share of the one batched sketch/embed pass to that query's
trace.

Request-id propagation rides a second contextvar:
:func:`bind_request_id` scopes an id around a request (the HTTP server
binds the ``X-Request-Id`` it received or generated), and
:func:`request_id` reads it anywhere downstream — the service stamps it
into result diagnostics and the slow-query log.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar

#: Per-span child cap: a long-lived outer span (e.g. a whole bulk ingest)
#: must not accumulate unbounded engine-forward children.
MAX_CHILDREN = 256


class Span:
    """One timed operation; children are sub-operations."""

    __slots__ = (
        "name", "meta", "children", "dropped_children", "duration_ms", "_t0",
    )

    def __init__(self, name: str, meta: dict | None = None):
        self.name = name
        self.meta = dict(meta) if meta else {}
        self.children: list[Span] = []
        self.dropped_children = 0
        self.duration_ms: float | None = None
        self._t0 = time.perf_counter()

    def finish(self) -> float:
        """Freeze the duration (idempotent); returns ``duration_ms``."""
        if self.duration_ms is None:
            self.duration_ms = 1000.0 * (time.perf_counter() - self._t0)
        return self.duration_ms

    def _attach(self, child: "Span") -> None:
        if len(self.children) >= MAX_CHILDREN:
            self.dropped_children += 1
        else:
            self.children.append(child)

    def add_child_duration(
        self, name: str, duration_ms: float, **meta
    ) -> "Span":
        """Attach a synthetic, already-finished child (amortized shares)."""
        child = Span(name, meta or None)
        child.duration_ms = float(duration_ms)
        self._attach(child)
        return child

    def child_sum(self, name: str) -> float:
        """Summed duration of direct children named ``name`` (0.0 when
        none) — the projection primitive ``Timings`` is built from."""
        return sum(
            child.duration_ms or 0.0
            for child in self.children
            if child.name == name
        )

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "duration_ms": self.duration_ms}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        if self.dropped_children:
            out["dropped_children"] = self.dropped_children
        return out

    def __repr__(self) -> str:
        duration = (
            f"{self.duration_ms:.3f}ms"
            if self.duration_ms is not None
            else "open"
        )
        return f"Span({self.name!r}, {duration}, {len(self.children)} children)"


_current: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


def current_span() -> Span | None:
    """The innermost open span in this context (None outside any trace)."""
    return _current.get()


@contextmanager
def span(name: str, **meta):
    """Open a span as a child of the current one (or as a root)."""
    opened = Span(name, meta or None)
    parent = _current.get()
    if parent is not None:
        parent._attach(opened)
    token = _current.set(opened)
    try:
        yield opened
    finally:
        opened.finish()
        _current.reset(token)


# --------------------------------------------------------------------- #
# Request-id propagation
# --------------------------------------------------------------------- #
_request_id: ContextVar[str | None] = ContextVar(
    "repro_obs_request_id", default=None
)


def request_id() -> str | None:
    """The request id bound in this context, if any."""
    return _request_id.get()


def new_request_id() -> str:
    """A fresh 16-hex-char request id (client stamp / server fallback)."""
    return uuid.uuid4().hex[:16]


@contextmanager
def bind_request_id(value: str):
    """Scope ``value`` as the current request id."""
    token = _request_id.set(value)
    try:
        yield value
    finally:
        _request_id.reset(token)
