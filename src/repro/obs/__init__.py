"""`repro.obs` — dependency-free observability for the lake stack.

Three pillars, stdlib-only:

- **Metrics** (:mod:`repro.obs.metrics`): thread-safe counters, gauges,
  and fixed-bucket histograms with p50/p95/p99 estimation, exported as
  JSON (:func:`get_registry`\\ ``().collect()``) or Prometheus text
  exposition (``render_prometheus()``). The module-level
  :func:`counter` / :func:`gauge` / :func:`histogram` helpers register
  on the process-default registry every subsystem shares.
- **Tracing** (:mod:`repro.obs.trace`): a :class:`Span` tree with
  contextvar propagation — one trace covers
  server -> service -> catalog -> engine -> index. Spans are the timing
  source the Discovery API's ``Timings`` is projected from, so they are
  always live.
- **Request ids + slow queries** (:mod:`repro.obs.trace` /
  :mod:`repro.obs.slowlog`): :func:`bind_request_id` scopes the
  ``X-Request-Id`` a client stamped; :class:`SlowQueryLog` keeps the
  top-N slowest requests with their span breakdowns.

Recording (metrics, slow log, access-log lines) is gated by
:func:`enabled` / :func:`set_enabled` (env: ``$REPRO_OBS_ENABLED``);
spans are not — see :mod:`repro.obs.runtime` for why.
"""

from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.runtime import ENV_ENABLED, enabled, set_enabled
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    MAX_CHILDREN,
    Span,
    bind_request_id,
    current_span,
    new_request_id,
    request_id,
    span,
)

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "ENV_ENABLED",
    "MAX_CHILDREN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "bind_request_id",
    "counter",
    "current_span",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "new_request_id",
    "request_id",
    "set_enabled",
    "span",
]
