"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named metrics; each metric owns one child
per label-value combination (a label-less metric has exactly one child).
Recording is a per-child lock around a float update — cheap enough for
the lake's query hot path — and every recording checks the process-wide
gate (:mod:`repro.obs.runtime`) first, so a disabled process pays one
module-attribute read per call.

Histograms use fixed cumulative-style buckets (defaults tuned for
millisecond latencies) and estimate p50/p95/p99 by linear interpolation
inside the bucket containing the rank — the classic Prometheus
``histogram_quantile`` estimator, computed client-side so the CLI and
``/v1/metrics`` JSON can show quantiles without a scrape stack.

Two export surfaces:

- :meth:`MetricsRegistry.collect` — a JSON-able snapshot (the
  ``/v1/metrics`` default and ``stats --metrics`` payload);
- :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition format 0.0.4 (``# HELP`` / ``# TYPE`` / samples, histogram
  ``_bucket{le=...}`` cumulative counts + ``_sum`` + ``_count``).

The module-level :func:`counter` / :func:`gauge` / :func:`histogram`
helpers register on the process-default registry (:func:`get_registry`),
which is what the lake stack instruments; re-registering an existing
name returns the existing metric (idempotent module-level handles).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

from repro.obs import runtime

#: Default histogram bucket upper bounds, in milliseconds — spans the
#: ~50µs sketch of a tiny table through multi-second bulk ingests. A
#: terminal +Inf bucket is always appended implicitly.
DEFAULT_MS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus sample values: integral floats render without a dot."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_suffix(labelnames: tuple, key: tuple) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, key)
    )
    return "{" + inner + "}"


# --------------------------------------------------------------------- #
# Children — one per label-value combination, each with its own lock.
# --------------------------------------------------------------------- #
class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not runtime._enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount

    def _reset(self) -> None:
        with self._lock:
            self.value = 0.0


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        if not runtime._enabled:
            return
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not runtime._enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _reset(self) -> None:
        with self._lock:
            self.value = 0.0


class _HistogramChild:
    __slots__ = ("_lock", "edges", "counts", "sum", "count")

    def __init__(self, edges: tuple):
        self._lock = threading.Lock()
        self.edges = edges
        # counts[i] — observations with value <= edges[i]; the final slot
        # is the +Inf bucket. Non-cumulative internally; the exposition
        # accumulates.
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not runtime._enabled:
            return
        value = float(value)
        index = bisect_left(self.edges, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float | None:
        """Estimated q-quantile (0..1) by linear interpolation within the
        rank's bucket; ``None`` on an empty histogram. Observations in the
        +Inf bucket clamp to the last finite edge (the standard
        ``histogram_quantile`` behavior)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            below = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.edges):
                    return self.edges[-1]
                lower = self.edges[index - 1] if index > 0 else 0.0
                upper = self.edges[index]
                fraction = (rank - below) / bucket_count
                return lower + (upper - lower) * fraction
        return self.edges[-1]

    def _reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.edges) + 1)
            self.sum = 0.0
            self.count = 0


# --------------------------------------------------------------------- #
# Metrics — named families of children.
# --------------------------------------------------------------------- #
class _Metric:
    kind = "untyped"

    def __init__(self, name: str, description: str, labelnames: tuple):
        self.name = _check_name(name)
        self.description = description
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()
        #: The sole child of a label-less metric, resolved once.
        self._default = self.labels() if not self.labelnames else None

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The child for one label-value combination (created on first
        use). Label names must match the declaration exactly."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} wants labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _sorted_children(self) -> list[tuple[tuple, object]]:
        with self._lock:
            return sorted(self._children.items())

    def _reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child._reset()

    def _collect_values(self) -> list[dict]:
        raise NotImplementedError

    def collect(self) -> dict:
        return {
            "type": self.kind,
            "description": self.description,
            "values": self._collect_values(),
        }


class Counter(_Metric):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} is labeled; use .labels(...).inc()"
            )
        self._default.inc(amount)

    @property
    def value(self) -> float:
        """Total across every label combination."""
        with self._lock:
            return sum(child.value for child in self._children.values())

    def _collect_values(self) -> list[dict]:
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "value": child.value,
            }
            for key, child in self._sorted_children()
        ]

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.description}",
            f"# TYPE {self.name} counter",
        ]
        for key, child in self._sorted_children():
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}{suffix} {_format_value(child.value)}"
            )
        return lines


class Gauge(_Metric):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def _only(self) -> _GaugeChild:
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} is labeled; use .labels(...)"
            )
        return self._default

    def set(self, value: float) -> None:
        self._only().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    def _collect_values(self) -> list[dict]:
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "value": child.value,
            }
            for key, child in self._sorted_children()
        ]

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.description}",
            f"# TYPE {self.name} gauge",
        ]
        for key, child in self._sorted_children():
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}{suffix} {_format_value(child.value)}"
            )
        return lines


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str,
        labelnames: tuple = (),
        buckets: tuple = DEFAULT_MS_BUCKETS,
    ):
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        if edges[-1] == math.inf:
            edges = edges[:-1]  # the +Inf bucket is implicit
        self.edges = edges
        super().__init__(name, description, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.edges)

    def _only(self) -> _HistogramChild:
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} is labeled; use .labels(...)"
            )
        return self._default

    def observe(self, value: float) -> None:
        self._only().observe(value)

    def quantile(self, q: float) -> float | None:
        return self._only().quantile(q)

    @property
    def total_sum(self) -> float:
        """Sum of observations across every label combination."""
        with self._lock:
            return sum(child.sum for child in self._children.values())

    @property
    def total_count(self) -> int:
        with self._lock:
            return sum(child.count for child in self._children.values())

    def _collect_values(self) -> list[dict]:
        out = []
        for key, child in self._sorted_children():
            with child._lock:
                counts = list(child.counts)
                total = child.count
                observed_sum = child.sum
            buckets = {}
            cumulative = 0
            for edge, bucket_count in zip(self.edges, counts):
                cumulative += bucket_count
                buckets[_format_value(edge)] = cumulative
            buckets["+Inf"] = total
            out.append(
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "count": total,
                    "sum": observed_sum,
                    "buckets": buckets,
                    "p50": child.quantile(0.50),
                    "p95": child.quantile(0.95),
                    "p99": child.quantile(0.99),
                }
            )
        return out

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.description}",
            f"# TYPE {self.name} histogram",
        ]
        for key, child in self._sorted_children():
            with child._lock:
                counts = list(child.counts)
                total = child.count
                observed_sum = child.sum
            pairs = list(zip(self.labelnames, key))
            cumulative = 0
            for edge, bucket_count in zip(self.edges, counts):
                cumulative += bucket_count
                suffix = _label_suffix(
                    self.labelnames + ("le",), key + (_format_value(edge),)
                )
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            inf_suffix = _label_suffix(
                self.labelnames + ("le",), key + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{inf_suffix} {total}")
            plain = _label_suffix(tuple(n for n, _ in pairs), key)
            lines.append(f"{self.name}_sum{plain} {_format_value(observed_sum)}")
            lines.append(f"{self.name}_count{plain} {total}")
        return lines


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class MetricsRegistry:
    """Named metrics with idempotent registration and two exporters."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, description: str, labelnames, **kw):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, description, labelnames, **kw)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, description: str = "", labelnames=()
    ) -> Counter:
        return self._register(Counter, name, description, labelnames)

    def gauge(self, name: str, description: str = "", labelnames=()) -> Gauge:
        return self._register(Gauge, name, description, labelnames)

    def histogram(
        self,
        name: str,
        description: str = "",
        labelnames=(),
        buckets: tuple = DEFAULT_MS_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, description, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def collect(self) -> dict:
        """JSON-able snapshot: ``{name: {type, description, values}}``."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.collect() for name, metric in metrics}

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4 (one trailing newline)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for _, metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Zero every child (registrations and label sets survive)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()


#: Content type a Prometheus scraper expects for the text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-default registry the lake stack instruments."""
    return _default_registry


def counter(name: str, description: str = "", labelnames=()) -> Counter:
    return _default_registry.counter(name, description, labelnames)


def gauge(name: str, description: str = "", labelnames=()) -> Gauge:
    return _default_registry.gauge(name, description, labelnames)


def histogram(
    name: str,
    description: str = "",
    labelnames=(),
    buckets: tuple = DEFAULT_MS_BUCKETS,
) -> Histogram:
    return _default_registry.histogram(
        name, description, labelnames, buckets=buckets
    )
