"""repro — a from-scratch reproduction of TabSketchFM (ICDE 2025).

TabSketchFM is a sketch-based tabular representation model for data
discovery over data lakes: instead of linearizing cell values, it feeds
MinHash sketches, numerical sketches and a table-level content snapshot into
a BERT-style encoder, fine-tunes cross-encoders for union / join / subset
identification, and uses the resulting embeddings for table search.

Public API tour (see README.md for a quickstart):

- ``repro.table`` — tables, type inference, CSV I/O, transforms;
- ``repro.sketch`` — MinHash / numerical sketches / content snapshots / LSH;
- ``repro.nn`` — the numpy autodiff + transformer substrate;
- ``repro.text`` — WordPiece tokenizer and the frozen sentence encoder;
- ``repro.core`` — the TabSketchFM model, pre-training, fine-tuning, search
  embeddings;
- ``repro.lakebench`` — synthetic LakeBench datasets and search benchmarks;
- ``repro.baselines`` — every system the paper compares against;
- ``repro.search`` — KNN index, the Fig. 6 ranking algorithm, IR metrics;
- ``repro.eval`` — task metrics and experiment plumbing.
"""

from repro.core import (
    InputEncoder,
    TabSketchFM,
    TabSketchFMConfig,
)
from repro.sketch import SketchConfig, sketch_table
from repro.table import Table, read_csv

__version__ = "1.0.0"

__all__ = [
    "InputEncoder",
    "TabSketchFM",
    "TabSketchFMConfig",
    "SketchConfig",
    "sketch_table",
    "Table",
    "read_csv",
    "__version__",
]
