"""Per-column numerical sketches (§III-A).

The paper's numerical sketch is the fixed-length vector::

    [unique count, NaN count, cell width,
     10th percentile, 20th, ..., 90th percentile,
     mean, standard deviation, min value, max value]

with unique/NaN counts normalized by the number of rows and cell width (for
string columns) being the average cell byte width. For non-numeric columns
the distribution statistics are zero; for numeric columns the cell width is
zero. Date columns are converted to POSIX timestamps first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.table.infer import numeric_view
from repro.table.schema import Column, is_null

#: unique + nan + width + 9 percentiles + mean + std + min + max
NUMERICAL_SKETCH_DIM = 16

_PERCENTILES = tuple(range(10, 100, 10))

#: Numeric stats are squashed by ``arcsinh`` then scaled by this constant so
#: typical magnitudes (counts, money, timestamps ~1e9) land in roughly [-1,1];
#: keeping model inputs well-conditioned.
_ASINH_SCALE = 1.0 / np.arcsinh(1e12)


@dataclass(frozen=True)
class NumericalSketch:
    """The raw statistics plus the normalized model-input vector."""

    unique_fraction: float
    nan_fraction: float
    avg_cell_width: float
    percentiles: tuple[float, ...]
    mean: float
    std: float
    min_value: float
    max_value: float

    def to_vector(self) -> np.ndarray:
        """Normalized ``float64[NUMERICAL_SKETCH_DIM]`` vector for the model.

        Fractions pass through unchanged; magnitude statistics are squashed
        with ``arcsinh`` (sign-preserving log-like compression) so that
        timestamps and small counts coexist on a comparable scale.
        """
        squash = lambda x: float(np.arcsinh(x) * _ASINH_SCALE)  # noqa: E731
        vector = [
            self.unique_fraction,
            self.nan_fraction,
            squash(self.avg_cell_width),
            *[squash(p) for p in self.percentiles],
            squash(self.mean),
            squash(self.std),
            squash(self.min_value),
            squash(self.max_value),
        ]
        return np.asarray(vector, dtype=np.float64)


def numerical_sketch(column: Column) -> NumericalSketch:
    """Compute the paper's numerical sketch for one column."""
    n_rows = column.n_rows
    non_null = column.non_null_values()
    nan_fraction = 1.0 - (len(non_null) / n_rows) if n_rows else 0.0
    unique_fraction = (len(set(non_null)) / n_rows) if n_rows else 0.0

    ctype = column.inferred_type
    if ctype.is_numeric:
        numbers = np.asarray(numeric_view(column.values, ctype), dtype=np.float64)
        avg_width = 0.0
    else:
        numbers = np.asarray([], dtype=np.float64)
        widths = [len(v.encode("utf-8")) for v in column.values if not is_null(v)]
        avg_width = float(np.mean(widths)) if widths else 0.0

    if numbers.size:
        percentiles = tuple(float(p) for p in np.percentile(numbers, _PERCENTILES))
        mean = float(np.mean(numbers))
        std = float(np.std(numbers))
        min_value = float(np.min(numbers))
        max_value = float(np.max(numbers))
    else:
        percentiles = tuple(0.0 for _ in _PERCENTILES)
        mean = std = min_value = max_value = 0.0

    return NumericalSketch(
        unique_fraction=unique_fraction,
        nan_fraction=nan_fraction,
        avg_cell_width=avg_width,
        percentiles=percentiles,
        mean=mean,
        std=std,
        min_value=min_value,
        max_value=max_value,
    )
