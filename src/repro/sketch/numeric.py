"""Per-column numerical sketches (§III-A) and their mergeable accumulator.

The paper's numerical sketch is the fixed-length vector::

    [unique count, NaN count, cell width,
     10th percentile, 20th, ..., 90th percentile,
     mean, standard deviation, min value, max value]

with unique/NaN counts normalized by the number of rows and cell width (for
string columns) being the average cell byte width. For non-numeric columns
the distribution statistics are zero; for numeric columns the cell width is
zero. Date columns are converted to POSIX timestamps first.

Live tables need this sketch to be *mergeable*: appending rows must update
the statistics in O(delta) without re-reading the stored column.
:class:`NumericAccumulator` carries the exactly-mergeable moments (row/null
counts, byte-width sum, sum, sum of squares, min/max) plus two bounded
summaries with documented approximation behaviour:

* a **sorted sample** of the numeric values, exact up to
  :data:`RESERVOIR_CAP` values; beyond the cap it is compressed by a
  deterministic equi-depth resample (rank error per compression is about
  ``1 / RESERVOIR_CAP``). Percentiles are read off this sample.
* a **bottom-k set of value hashes** (KMV sketch), exact up to
  :data:`DISTINCT_CAP` distinct values; beyond the cap the distinct count
  of a merge is the standard KMV estimate ``(k - 1) * 2^64 / h_(k)``
  (Bar-Yossef et al. 2002), clamped to ``[max(|A|,|B|), |A|+|B|]``.

While every input stays under both caps, merge-then-derive is **bitwise
identical** to sketching the concatenated column from scratch: the cold
path sorts the numeric view first so every statistic is order-canonical,
and an exact merged sample *is* the full sorted array. There is no RNG
anywhere — identical inputs always produce identical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.table.infer import numeric_view
from repro.table.schema import Column, ColumnType
from repro.utils.hashing import hash_string

#: unique + nan + width + 9 percentiles + mean + std + min + max
NUMERICAL_SKETCH_DIM = 16

_PERCENTILES = tuple(range(10, 100, 10))

#: Numeric stats are squashed by ``arcsinh`` then scaled by this constant so
#: typical magnitudes (counts, money, timestamps ~1e9) land in roughly [-1,1];
#: keeping model inputs well-conditioned.
_ASINH_SCALE = 1.0 / np.arcsinh(1e12)

#: Max stored numeric sample values per column. Module-level (not part of
#: ``SketchConfig``) so existing lake fingerprints are unchanged; tests may
#: monkeypatch it to exercise the compressed regime cheaply.
RESERVOIR_CAP = 512

#: Max stored distinct-value hashes per column (KMV bottom-k size).
DISTINCT_CAP = 4096

_U64_SCALE = float(2**64)


def _mix64(hashes: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic).

    The KMV estimator assumes hashes uniform on ``[0, 2^64)``; raw FNV-1a
    of short, near-sequential keys is visibly non-uniform, so the distinct
    reservoir stores finalized hashes instead.
    """
    z = np.asarray(hashes, dtype=np.uint64).copy()
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


@dataclass(frozen=True)
class NumericalSketch:
    """The raw statistics plus the normalized model-input vector."""

    unique_fraction: float
    nan_fraction: float
    avg_cell_width: float
    percentiles: tuple[float, ...]
    mean: float
    std: float
    min_value: float
    max_value: float

    def to_vector(self) -> np.ndarray:
        """Normalized ``float64[NUMERICAL_SKETCH_DIM]`` vector for the model.

        Fractions pass through unchanged; magnitude statistics are squashed
        with ``arcsinh`` (sign-preserving log-like compression) so that
        timestamps and small counts coexist on a comparable scale.
        """
        squash = lambda x: float(np.arcsinh(x) * _ASINH_SCALE)  # noqa: E731
        vector = [
            self.unique_fraction,
            self.nan_fraction,
            squash(self.avg_cell_width),
            *[squash(p) for p in self.percentiles],
            squash(self.mean),
            squash(self.std),
            squash(self.min_value),
            squash(self.max_value),
        ]
        return np.asarray(vector, dtype=np.float64)


def _equi_depth(points: np.ndarray, weights: np.ndarray, cap: int) -> np.ndarray:
    """Deterministic equi-depth resample of a weighted sorted point cloud.

    Each point sits at the cumulative-weight midpoint of its mass; the
    compressed sample reads ``cap`` evenly spaced quantiles off that stair
    via linear interpolation. ``np.interp`` clamps the 0/1 endpoints, so the
    resample always retains the extremes.
    """
    total = float(weights.sum())
    positions = (np.cumsum(weights) - 0.5 * weights) / total
    targets = np.linspace(0.0, 1.0, cap)
    return np.interp(targets, positions, points)


@dataclass(frozen=True)
class NumericAccumulator:
    """Mergeable per-column state behind :class:`NumericalSketch`.

    ``sample`` is always sorted ascending; ``distinct`` is the sorted
    bottom-k of FNV-1a hashes of the distinct non-null string values.
    ``sample_exact`` / ``distinct_exact`` record whether those summaries
    still hold *every* underlying value — while they do, merges are exact.
    """

    n_rows: int
    n_nonnull: int
    width_sum: int
    is_numeric: bool
    n_numeric: int
    total: float
    total_sq: float
    min_value: float
    max_value: float
    sample: np.ndarray  # float64, sorted
    sample_exact: bool
    n_distinct: int
    distinct: np.ndarray  # uint64, sorted bottom-k
    distinct_exact: bool

    def merge(self, other: "NumericAccumulator") -> "NumericAccumulator":
        """Accumulator of the concatenated column — exact under the caps."""
        if self.is_numeric != other.is_numeric:
            raise ValueError(
                "cannot merge a numeric accumulator with a non-numeric one"
            )
        n_numeric = self.n_numeric + other.n_numeric
        if self.n_numeric and other.n_numeric:
            min_value = min(self.min_value, other.min_value)
            max_value = max(self.max_value, other.max_value)
        elif self.n_numeric:
            min_value, max_value = self.min_value, self.max_value
        else:
            min_value, max_value = other.min_value, other.max_value

        if self.n_numeric == 0:
            sample, sample_exact = other.sample, other.sample_exact
        elif other.n_numeric == 0:
            sample, sample_exact = self.sample, self.sample_exact
        elif (
            self.sample_exact
            and other.sample_exact
            and n_numeric <= RESERVOIR_CAP
        ):
            sample = np.sort(np.concatenate([self.sample, other.sample]))
            sample_exact = True
        else:
            points = np.concatenate([self.sample, other.sample])
            weights = np.concatenate(
                [
                    np.full(len(self.sample), self.n_numeric / len(self.sample)),
                    np.full(
                        len(other.sample), other.n_numeric / len(other.sample)
                    ),
                ]
            )
            order = np.argsort(points, kind="stable")
            sample = _equi_depth(points[order], weights[order], RESERVOIR_CAP)
            sample_exact = False

        union = np.union1d(self.distinct, other.distinct)
        upper = self.n_distinct + other.n_distinct
        lower = max(self.n_distinct, other.n_distinct)
        if self.distinct_exact and other.distinct_exact:
            n_distinct = int(len(union))  # both hash sets complete ⇒ exact
            if len(union) <= DISTINCT_CAP:
                distinct, distinct_exact = union, True
            else:
                distinct, distinct_exact = union[:DISTINCT_CAP], False
        else:
            # Any inexact side stored a full bottom-k, so the union holds at
            # least DISTINCT_CAP hashes and its bottom-k is the bottom-k of
            # the true union: the KMV estimate applies.
            distinct = union[:DISTINCT_CAP]
            distinct_exact = False
            k = len(distinct)
            kth = float(distinct[-1])
            estimate = int(round((k - 1) * _U64_SCALE / kth)) if kth else upper
            n_distinct = int(min(upper, max(lower, estimate)))

        return NumericAccumulator(
            n_rows=self.n_rows + other.n_rows,
            n_nonnull=self.n_nonnull + other.n_nonnull,
            width_sum=self.width_sum + other.width_sum,
            is_numeric=self.is_numeric,
            n_numeric=n_numeric,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
            min_value=min_value,
            max_value=max_value,
            sample=sample,
            sample_exact=sample_exact,
            n_distinct=n_distinct,
            distinct=distinct,
            distinct_exact=distinct_exact,
        )

    def to_sketch(self) -> NumericalSketch:
        """Derive the paper sketch from the accumulated state.

        With ``sample_exact`` the distribution statistics are computed the
        same way the cold path computes them (on the full sorted array), so
        the result is bitwise identical to a from-scratch sketch; otherwise
        the percentiles come off the compressed sample and mean/std off the
        exact moments.
        """
        n_rows = self.n_rows
        nan_fraction = 1.0 - (self.n_nonnull / n_rows) if n_rows else 0.0
        unique_fraction = (self.n_distinct / n_rows) if n_rows else 0.0
        if self.is_numeric or not self.n_nonnull:
            avg_width = 0.0
        else:
            avg_width = self.width_sum / self.n_nonnull

        if self.n_numeric:
            percentiles = tuple(
                float(p) for p in np.percentile(self.sample, _PERCENTILES)
            )
            if self.sample_exact:
                mean = float(np.mean(self.sample))
                std = float(np.std(self.sample))
            else:
                mean = self.total / self.n_numeric
                variance = max(0.0, self.total_sq / self.n_numeric - mean * mean)
                std = float(np.sqrt(variance))
            min_value, max_value = self.min_value, self.max_value
        else:
            percentiles = tuple(0.0 for _ in _PERCENTILES)
            mean = std = min_value = max_value = 0.0

        return NumericalSketch(
            unique_fraction=unique_fraction,
            nan_fraction=nan_fraction,
            avg_cell_width=avg_width,
            percentiles=percentiles,
            mean=mean,
            std=std,
            min_value=min_value,
            max_value=max_value,
        )


def numerical_profile(
    column: Column, ctype: "ColumnType | None" = None
) -> tuple[NumericalSketch, NumericAccumulator]:
    """Sketch *and* accumulator for one column — the single cold path.

    The sketch is always computed from the full data (never from the
    compressed sample), so cold sketches stay exact regardless of the caps.
    ``ctype`` overrides type inference; appends use it to freeze a delta
    column to the type the stored column was ingested with.
    """
    n_rows = column.n_rows
    non_null = column.non_null_values()
    n_nonnull = len(non_null)
    nan_fraction = 1.0 - (n_nonnull / n_rows) if n_rows else 0.0
    distinct_values = set(non_null)
    n_distinct = len(distinct_values)
    unique_fraction = (n_distinct / n_rows) if n_rows else 0.0

    if ctype is None:
        ctype = column.inferred_type
    if ctype.is_numeric:
        numbers = np.asarray(numeric_view(column.values, ctype), dtype=np.float64)
        # Order-canonical: every derived statistic (and the stored sample)
        # is a function of the multiset, so merge-vs-rebuild can be bitwise.
        numbers.sort()
        width_sum = 0
        avg_width = 0.0
    else:
        numbers = np.asarray([], dtype=np.float64)
        widths = [len(v.encode("utf-8")) for v in non_null]
        width_sum = int(sum(widths))
        avg_width = float(np.mean(widths)) if widths else 0.0

    if numbers.size:
        percentiles = tuple(float(p) for p in np.percentile(numbers, _PERCENTILES))
        mean = float(np.mean(numbers))
        std = float(np.std(numbers))
        min_value = float(numbers[0])
        max_value = float(numbers[-1])
        total = float(np.sum(numbers))
        total_sq = float(np.sum(numbers * numbers))
    else:
        percentiles = tuple(0.0 for _ in _PERCENTILES)
        mean = std = min_value = max_value = 0.0
        total = total_sq = 0.0

    sketch = NumericalSketch(
        unique_fraction=unique_fraction,
        nan_fraction=nan_fraction,
        avg_cell_width=avg_width,
        percentiles=percentiles,
        mean=mean,
        std=std,
        min_value=min_value,
        max_value=max_value,
    )

    if numbers.size <= RESERVOIR_CAP:
        sample = numbers.copy()
        sample_exact = True
    else:
        sample = _equi_depth(
            numbers, np.ones(numbers.size, dtype=np.float64), RESERVOIR_CAP
        )
        sample_exact = False

    hashes = _mix64(
        np.fromiter(
            (hash_string(v) for v in distinct_values),
            dtype=np.uint64,
            count=n_distinct,
        )
    )
    hashes.sort()
    if n_distinct <= DISTINCT_CAP:
        distinct = hashes
        distinct_exact = True
    else:
        distinct = hashes[:DISTINCT_CAP].copy()
        distinct_exact = False

    accumulator = NumericAccumulator(
        n_rows=n_rows,
        n_nonnull=n_nonnull,
        width_sum=width_sum,
        is_numeric=bool(ctype.is_numeric),
        n_numeric=int(numbers.size),
        total=total,
        total_sq=total_sq,
        min_value=min_value,
        max_value=max_value,
        sample=sample,
        sample_exact=sample_exact,
        n_distinct=n_distinct,
        distinct=distinct,
        distinct_exact=distinct_exact,
    )
    return sketch, accumulator


def numerical_sketch(column: Column) -> NumericalSketch:
    """Compute the paper's numerical sketch for one column."""
    return numerical_profile(column)[0]
