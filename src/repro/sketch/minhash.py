"""MinHash: min-wise hashing for Jaccard/containment estimation.

A MinHash signature of a set ``S`` is ``sig_i = min_{x in S} h_i(x)`` for
``k`` independent hash functions ``h_i``. The fraction of matching signature
positions between two sets is an unbiased estimator of their Jaccard
similarity (Broder 1997; Leskovec et al., "Mining of Massive Datasets").

Each ``h_i`` is a multiply-shift hash ``(a_i * fnv64(x) + b_i) mod 2^64`` with
odd ``a_i`` (Dietzfelbinger's universal family); numpy's wrapping ``uint64``
arithmetic computes the whole (k, n) hash matrix in one vectorized pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.hashing import hash_string
from repro.utils.rng import spawn_rng

#: Default signature length; matches datasketch's default of 128.
DEFAULT_NUM_PERM = 128

#: Sentinel for the empty set (no hash can reach it in practice).
_EMPTY_SLOT = np.uint64(0xFFFFFFFFFFFFFFFF)

_U64_SCALE = float(2**64)


@dataclass(frozen=True)
class MinHash:
    """An immutable MinHash signature."""

    signature: np.ndarray  # uint64[k]

    @property
    def num_perm(self) -> int:
        return int(self.signature.shape[0])

    def jaccard(self, other: "MinHash") -> float:
        """Estimated Jaccard similarity against ``other``."""
        return estimate_jaccard(self, other)

    def is_empty(self) -> bool:
        return bool(np.all(self.signature == _EMPTY_SLOT))

    def merge(self, other: "MinHash") -> "MinHash":
        """Signature of the *union* of the two underlying sets — exact.

        Slotwise ``min(sig_a, sig_b)`` equals ``min_{x in A ∪ B} h_i(x)``
        by associativity of ``min``, so merging sketches is lossless: the
        merged signature is bit-identical to sketching the union directly.
        The empty-set sentinel is the ``uint64`` maximum, so empty inputs
        need no special casing.
        """
        if self.num_perm != other.num_perm:
            raise ValueError(
                f"signature lengths differ: {self.num_perm} vs {other.num_perm}"
            )
        return MinHash(np.minimum(self.signature, other.signature))

    def normalized(self) -> np.ndarray:
        """Signature scaled to [0, 1] floats — the model-input form (§III-B.5)."""
        return self.signature.astype(np.float64) / _U64_SCALE


class MinHasher:
    """A reusable family of ``num_perm`` universal hash functions.

    All sketches in a corpus must be produced by the *same* hasher (same seed
    and ``num_perm``) for their signatures to be comparable.
    """

    def __init__(self, num_perm: int = DEFAULT_NUM_PERM, seed: int = 1):
        if num_perm < 1:
            raise ValueError("num_perm must be >= 1")
        self.num_perm = num_perm
        self.seed = seed
        rng = spawn_rng(seed, "minhash-family")
        a = rng.integers(0, 2**63, size=num_perm, dtype=np.uint64)
        self._a = (a << np.uint64(1)) | np.uint64(1)  # odd multipliers
        self._b = rng.integers(0, 2**63, size=num_perm, dtype=np.uint64)

    def sketch(self, items: Iterable[str]) -> MinHash:
        """MinHash signature of the *set* of items (duplicates are ignored)."""
        unique = set(items)
        if not unique:
            return MinHash(np.full(self.num_perm, _EMPTY_SLOT, dtype=np.uint64))
        raw = np.fromiter(
            (hash_string(x) for x in unique), dtype=np.uint64, count=len(unique)
        )
        with np.errstate(over="ignore"):
            # (k, n) = a[:,None] * raw[None,:] + b[:,None], wrapping mod 2^64.
            hashed = self._a[:, None] * raw[None, :] + self._b[:, None]
        return MinHash(hashed.min(axis=1))

    def sketch_tokens(self, text_values: Iterable[str]) -> MinHash:
        """Signature over the set of whitespace tokens across all values.

        This is the paper's *words* MinHash for string columns: "for string
        columns, we also compute a MinHash signature for set of words within
        the column" (§III-A).
        """
        words: set[str] = set()
        for value in text_values:
            words.update(value.split())
        return self.sketch(words)


def slot_features(sketch: MinHash) -> np.ndarray:
    """Signature slots as decorrelated features in [-1, 1] (model-input form).

    Raw MinHash slots are *minima* of uniform hashes, so their values pile up
    near zero with a set-size-dependent scale: every signature shares a huge
    common-mode direction and linear projections of the raw values cannot
    express slot agreement. This map re-randomizes each slot **bijectively**
    — ``feature_i = scramble(i, slot_i)`` mapped to uniform [-1, 1] — so two
    signatures produce equal features exactly where their slots agree and
    independent uniforms elsewhere. Dot products of the feature vectors are
    then proportional to the Jaccard estimate, which is the geometry the
    paper's full-size encoder learns internally (see DESIGN.md §1).
    """
    signature = sketch.signature
    index = np.arange(signature.shape[0], dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = signature + index * np.uint64(0x9E3779B97F4A7C15)
        # splitmix64 finalizer: decorrelates consecutive/biased inputs.
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return 2.0 * (x.astype(np.float64) / _U64_SCALE) - 1.0


def estimate_jaccard(first: MinHash, second: MinHash) -> float:
    """Fraction of agreeing slots — an unbiased Jaccard estimate."""
    if first.num_perm != second.num_perm:
        raise ValueError(
            f"signature lengths differ: {first.num_perm} vs {second.num_perm}"
        )
    if first.is_empty() and second.is_empty():
        return 0.0
    return float(np.mean(first.signature == second.signature))


def estimate_containment(
    query: MinHash, candidate: MinHash, query_size: int, candidate_size: int
) -> float:
    """Estimate ``|Q ∩ C| / |Q|`` from Jaccard and set sizes.

    Uses the identity ``containment = j * (|Q| + |C|) / (|Q| * (1 + j))``,
    the standard conversion used by LSH Ensemble (Zhu et al., VLDB 2016).
    """
    if query_size <= 0:
        return 0.0
    j = estimate_jaccard(query, candidate)
    if j <= 0.0:
        return 0.0
    containment = j * (query_size + candidate_size) / (query_size * (1.0 + j))
    return float(min(1.0, containment))


def exact_jaccard(first: Sequence[str] | set, second: Sequence[str] | set) -> float:
    """Exact Jaccard similarity of two value collections (as sets)."""
    a, b = set(first), set(second)
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def exact_containment(query: Sequence[str] | set, candidate: Sequence[str] | set) -> float:
    """Exact set containment ``|Q ∩ C| / |Q|``."""
    q, c = set(query), set(candidate)
    if not q:
        return 0.0
    return len(q & c) / len(q)
