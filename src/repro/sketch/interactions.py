"""Cross-table sketch interaction features for the pair encoder.

**Scale-down substitution** (see DESIGN.md §1): BERT-base learns to compare
MinHash signatures across positions internally — it has 12 layers, 118M
parameters and 730k pre-training examples to discover that two positions
agreeing in many signature slots means their columns share values. A 2-layer
laptop-scale trunk trained on a few hundred pairs cannot re-derive that
comparison primitive; it memorizes instead. We therefore compute the slot
agreement statistics *explicitly* and inject them at the [CLS] position of
pair encodings, so the model learns the task mapping on top of the same
information the paper's model extracts internally.

The features respect the sketch-ablation switches: disabling a sketch family
(Tables III/IV) zeroes its interaction features too, so ablations measure
exactly what the paper's do.

Feature layout (``INTERACTION_DIM`` floats):

====  =====================================================================
 0    content-snapshot slot agreement between the two tables
 1-3  values-MinHash column-pair agreement: max / mean-of-row-maxes(A→B) /
      mean-of-row-maxes(B→A)
 4-6  words-MinHash agreements, same aggregation
 7-9  numerical-sketch proximity (1 − normalized L1), same aggregation
 10   column-count ratio  min(|A|,|B|) / max(|A|,|B|)
 11   fraction of column-type matches under the best value-MinHash pairing
 12   *min* of B's per-column best value-MinHash agreements — the
      conjunctive subset statistic: B ⊆ A requires EVERY column of B to
      match some column of A
 13   min of B's per-column best numerical-sketch proximities, same idea
====  =====================================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sketch.minhash import estimate_jaccard
from repro.sketch.pipeline import TableSketch

if TYPE_CHECKING:  # avoid a module cycle with repro.core.config
    from repro.core.config import SketchSelection

INTERACTION_DIM = 14


class _FullSelection:
    """Default: every sketch family enabled."""

    use_minhash = True
    use_numeric = True
    use_snapshot = True


def _pairwise_stats(matrix: np.ndarray) -> tuple[float, float, float]:
    """(max, mean of row maxes, mean of column maxes) of a score matrix."""
    if matrix.size == 0:
        return 0.0, 0.0, 0.0
    return (
        float(matrix.max()),
        float(matrix.max(axis=1).mean()),
        float(matrix.max(axis=0).mean()),
    )


def _minhash_matrix(first: TableSketch, second: TableSketch, kind: str) -> np.ndarray:
    rows = []
    for a in first.column_sketches:
        row = []
        for b in second.column_sketches:
            mh_a = a.values_minhash if kind == "values" else a.words_minhash
            mh_b = b.values_minhash if kind == "values" else b.words_minhash
            if mh_a.is_empty() or mh_b.is_empty():
                row.append(0.0)
            else:
                row.append(estimate_jaccard(mh_a, mh_b))
        rows.append(row)
    return np.asarray(rows) if rows else np.zeros((0, 0))


def _numeric_matrix(first: TableSketch, second: TableSketch) -> np.ndarray:
    vectors_a = [c.numeric.to_vector() for c in first.column_sketches]
    vectors_b = [c.numeric.to_vector() for c in second.column_sketches]
    if not vectors_a or not vectors_b:
        return np.zeros((0, 0))
    a = np.stack(vectors_a)
    b = np.stack(vectors_b)
    l1 = np.abs(a[:, None, :] - b[None, :, :]).mean(axis=-1)
    # Proximity in [0, 1]: identical sketches → 1. The sharp kernel keeps
    # scale-shifted distributions (whose squashed stats differ by only a few
    # hundredths) visibly apart from genuine matches.
    return np.exp(-12.0 * l1)


def interaction_features(
    first: TableSketch,
    second: TableSketch,
    selection: "SketchSelection | None" = None,
) -> np.ndarray:
    """The 12-dim cross-table interaction vector (ablation-aware)."""
    selection = selection or _FullSelection()
    out = np.zeros(INTERACTION_DIM, dtype=np.float64)

    if selection.use_snapshot and not (
        first.snapshot.is_empty() or second.snapshot.is_empty()
    ):
        out[0] = estimate_jaccard(first.snapshot, second.snapshot)

    values_matrix = None
    if selection.use_minhash:
        values_matrix = _minhash_matrix(first, second, "values")
        out[1:4] = _pairwise_stats(values_matrix)
        out[4:7] = _pairwise_stats(_minhash_matrix(first, second, "words"))
        if values_matrix.size:
            # Conjunctive subset statistic: the worst of B's best matches.
            out[12] = float(values_matrix.max(axis=0).min())

    if selection.use_numeric:
        numeric_matrix = _numeric_matrix(first, second)
        out[7:10] = _pairwise_stats(numeric_matrix)
        if numeric_matrix.size:
            out[13] = float(numeric_matrix.max(axis=0).min())

    n_a, n_b = first.n_cols, second.n_cols
    if n_a and n_b:
        out[10] = min(n_a, n_b) / max(n_a, n_b)

    if selection.use_minhash and values_matrix is not None and values_matrix.size:
        best = values_matrix.argmax(axis=1)
        matches = sum(
            1
            for i, j in enumerate(best)
            if first.column_sketches[i].ctype == second.column_sketches[int(j)].ctype
        )
        out[11] = matches / n_a
    return out
