"""Assemble all of a table's sketches into the model's raw input (§III-A).

For every table we produce a :class:`TableSketch`:

- one table-level **content snapshot** (MinHash over the first 10k rows);
- per column, a :class:`ColumnSketch` holding
  - the **cell-values MinHash** (all columns),
  - the **words MinHash** (string columns only; empty signature otherwise),
  - the **numerical sketch** vector,
  - the inferred column type.

The model input layer consumes the *normalized* forms: MinHash signatures
scaled to [0, 1] and the normalized numerical-statistics vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sketch.content import CONTENT_SNAPSHOT_ROWS, content_snapshot
from repro.sketch.minhash import DEFAULT_NUM_PERM, MinHash, MinHasher
from repro.sketch.numeric import (
    NumericAccumulator,
    NumericalSketch,
    numerical_profile,
)
from repro.table.schema import Column, ColumnType, Table


@dataclass(frozen=True)
class SketchConfig:
    """Knobs for sketch construction.

    ``num_perm`` is the MinHash signature width; ``snapshot_rows`` bounds the
    content snapshot. ``seed`` fixes the hash family — every sketch that will
    ever be compared must share it.
    """

    num_perm: int = DEFAULT_NUM_PERM
    snapshot_rows: int = CONTENT_SNAPSHOT_ROWS
    seed: int = 1

    def build_hasher(self) -> MinHasher:
        return MinHasher(num_perm=self.num_perm, seed=self.seed)


@dataclass(frozen=True)
class ColumnSketch:
    """All sketches of one column."""

    name: str
    ctype: ColumnType
    values_minhash: MinHash
    words_minhash: MinHash  # empty signature for non-string columns
    numeric: NumericalSketch
    n_values: int  # distinct non-null count, for containment estimation
    #: Mergeable state behind ``numeric`` / ``n_values``. ``None`` only on
    #: sketches deserialized from a pre-live-tables store; such columns
    #: cannot be appended to until the table is re-ingested or updated.
    numeric_acc: NumericAccumulator | None = None

    def merge(self, delta: "ColumnSketch") -> "ColumnSketch":
        """Sketch of this column with ``delta``'s rows appended.

        MinHash halves merge exactly (slotwise min); the numerical state
        merges through :class:`NumericAccumulator` (exact under its caps,
        documented approximation beyond). The column type is frozen at
        ingest: the delta must have been sketched with this column's type.
        """
        if self.name != delta.name:
            raise ValueError(f"column name mismatch: {self.name!r} vs {delta.name!r}")
        if self.ctype != delta.ctype:
            raise ValueError(
                f"column {self.name!r}: delta sketched as {delta.ctype.name}, "
                f"stored column is {self.ctype.name}"
            )
        if self.numeric_acc is None or delta.numeric_acc is None:
            raise ValueError(
                f"column {self.name!r} predates mergeable sketch state; "
                "re-ingest or update the table before appending"
            )
        acc = self.numeric_acc.merge(delta.numeric_acc)
        return ColumnSketch(
            name=self.name,
            ctype=self.ctype,
            values_minhash=self.values_minhash.merge(delta.values_minhash),
            words_minhash=self.words_minhash.merge(delta.words_minhash),
            numeric=acc.to_sketch(),
            n_values=acc.n_distinct,
            numeric_acc=acc,
        )

    def minhash_vector(self, num_perm: int) -> np.ndarray:
        """The concatenated [values ‖ words] MinHash model input.

        For string columns both halves are populated (E_{C||W} in Fig. 1);
        for numeric/date columns the words half is zero (E_C only).

        Slots pass through :func:`repro.sketch.minhash.slot_features`: a
        bijective per-slot re-randomization into uniform [-1, 1] features
        whose dot products are proportional to slot agreement (raw minima
        share a huge common mode that linear projections cannot separate).
        Absent halves stay 0 (the neutral value).
        """
        from repro.sketch.minhash import slot_features

        vec = np.zeros(2 * num_perm, dtype=np.float64)
        vec[:num_perm] = slot_features(self.values_minhash)
        if self.ctype == ColumnType.STRING and not self.words_minhash.is_empty():
            vec[num_perm:] = slot_features(self.words_minhash)
        return vec


@dataclass(frozen=True)
class TableSketch:
    """All sketches of one table, plus identifying metadata."""

    table_name: str
    description: str
    column_sketches: list[ColumnSketch]
    snapshot: MinHash
    config: SketchConfig = field(default=SketchConfig())

    @property
    def n_cols(self) -> int:
        return len(self.column_sketches)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.column_sketches]

    def snapshot_vector(self) -> np.ndarray:
        """Content-snapshot model input (E_CS in Fig. 1), zero-padded to the
        same 2*num_perm width as column MinHash vectors and slot-decorrelated
        like them (see :meth:`ColumnSketch.minhash_vector`)."""
        from repro.sketch.minhash import slot_features

        vec = np.zeros(2 * self.config.num_perm, dtype=np.float64)
        vec[: self.config.num_perm] = slot_features(self.snapshot)
        return vec

    def merge(self, delta: "TableSketch") -> "TableSketch":
        """Sketch of this table with ``delta``'s rows appended — O(delta).

        The delta must carry the same column names in the same order and
        the same :class:`SketchConfig` (same hash family). Column sketches
        merge pairwise; the content snapshot merges by MinHash union. Note
        the snapshot caveat: a cold rebuild only snapshots the first
        ``config.snapshot_rows`` rows, while merged snapshots cover every
        appended row — merge-vs-rebuild snapshot parity therefore holds
        exactly while the total row count stays under that limit.
        """
        if self.config != delta.config:
            raise ValueError("sketch configs differ; cannot merge")
        if self.column_names != delta.column_names:
            raise ValueError(
                f"column mismatch: table has {self.column_names}, "
                f"delta has {delta.column_names}"
            )
        return TableSketch(
            table_name=self.table_name,
            description=self.description,
            column_sketches=[
                ours.merge(theirs)
                for ours, theirs in zip(self.column_sketches, delta.column_sketches)
            ],
            snapshot=self.snapshot.merge(delta.snapshot),
            config=self.config,
        )


def sketch_column(column: Column, hasher: MinHasher) -> ColumnSketch:
    """Sketch one column: values MinHash, words MinHash, numerical sketch."""
    non_null = column.non_null_values()
    values_mh = hasher.sketch(non_null)
    if column.inferred_type == ColumnType.STRING:
        words_mh = hasher.sketch_tokens(non_null)
    else:
        words_mh = hasher.sketch(())
    numeric, acc = numerical_profile(column)
    return ColumnSketch(
        name=column.name,
        ctype=column.inferred_type,
        values_minhash=values_mh,
        words_minhash=words_mh,
        numeric=numeric,
        n_values=len(set(non_null)),
        numeric_acc=acc,
    )


def sketch_table(
    table: Table,
    config: SketchConfig | None = None,
    hasher: MinHasher | None = None,
) -> TableSketch:
    """Produce the full :class:`TableSketch` for ``table``.

    Passing a pre-built ``hasher`` avoids recreating the hash family per
    table when sketching a whole corpus.
    """
    config = config or SketchConfig()
    hasher = hasher or config.build_hasher()
    if hasher.num_perm != config.num_perm:
        raise ValueError("hasher num_perm does not match config.num_perm")
    return TableSketch(
        table_name=table.name,
        description=table.description,
        column_sketches=[sketch_column(c, hasher) for c in table.columns],
        snapshot=content_snapshot(table, hasher, limit=config.snapshot_rows),
        config=config,
    )
