"""Assemble all of a table's sketches into the model's raw input (§III-A).

For every table we produce a :class:`TableSketch`:

- one table-level **content snapshot** (MinHash over the first 10k rows);
- per column, a :class:`ColumnSketch` holding
  - the **cell-values MinHash** (all columns),
  - the **words MinHash** (string columns only; empty signature otherwise),
  - the **numerical sketch** vector,
  - the inferred column type.

The model input layer consumes the *normalized* forms: MinHash signatures
scaled to [0, 1] and the normalized numerical-statistics vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sketch.content import CONTENT_SNAPSHOT_ROWS, content_snapshot
from repro.sketch.minhash import DEFAULT_NUM_PERM, MinHash, MinHasher
from repro.sketch.numeric import NumericalSketch, numerical_sketch
from repro.table.schema import Column, ColumnType, Table


@dataclass(frozen=True)
class SketchConfig:
    """Knobs for sketch construction.

    ``num_perm`` is the MinHash signature width; ``snapshot_rows`` bounds the
    content snapshot. ``seed`` fixes the hash family — every sketch that will
    ever be compared must share it.
    """

    num_perm: int = DEFAULT_NUM_PERM
    snapshot_rows: int = CONTENT_SNAPSHOT_ROWS
    seed: int = 1

    def build_hasher(self) -> MinHasher:
        return MinHasher(num_perm=self.num_perm, seed=self.seed)


@dataclass(frozen=True)
class ColumnSketch:
    """All sketches of one column."""

    name: str
    ctype: ColumnType
    values_minhash: MinHash
    words_minhash: MinHash  # empty signature for non-string columns
    numeric: NumericalSketch
    n_values: int  # distinct non-null count, for containment estimation

    def minhash_vector(self, num_perm: int) -> np.ndarray:
        """The concatenated [values ‖ words] MinHash model input.

        For string columns both halves are populated (E_{C||W} in Fig. 1);
        for numeric/date columns the words half is zero (E_C only).

        Slots pass through :func:`repro.sketch.minhash.slot_features`: a
        bijective per-slot re-randomization into uniform [-1, 1] features
        whose dot products are proportional to slot agreement (raw minima
        share a huge common mode that linear projections cannot separate).
        Absent halves stay 0 (the neutral value).
        """
        from repro.sketch.minhash import slot_features

        vec = np.zeros(2 * num_perm, dtype=np.float64)
        vec[:num_perm] = slot_features(self.values_minhash)
        if self.ctype == ColumnType.STRING and not self.words_minhash.is_empty():
            vec[num_perm:] = slot_features(self.words_minhash)
        return vec


@dataclass(frozen=True)
class TableSketch:
    """All sketches of one table, plus identifying metadata."""

    table_name: str
    description: str
    column_sketches: list[ColumnSketch]
    snapshot: MinHash
    config: SketchConfig = field(default=SketchConfig())

    @property
    def n_cols(self) -> int:
        return len(self.column_sketches)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.column_sketches]

    def snapshot_vector(self) -> np.ndarray:
        """Content-snapshot model input (E_CS in Fig. 1), zero-padded to the
        same 2*num_perm width as column MinHash vectors and slot-decorrelated
        like them (see :meth:`ColumnSketch.minhash_vector`)."""
        from repro.sketch.minhash import slot_features

        vec = np.zeros(2 * self.config.num_perm, dtype=np.float64)
        vec[: self.config.num_perm] = slot_features(self.snapshot)
        return vec


def sketch_column(column: Column, hasher: MinHasher) -> ColumnSketch:
    """Sketch one column: values MinHash, words MinHash, numerical sketch."""
    non_null = column.non_null_values()
    values_mh = hasher.sketch(non_null)
    if column.inferred_type == ColumnType.STRING:
        words_mh = hasher.sketch_tokens(non_null)
    else:
        words_mh = hasher.sketch(())
    return ColumnSketch(
        name=column.name,
        ctype=column.inferred_type,
        values_minhash=values_mh,
        words_minhash=words_mh,
        numeric=numerical_sketch(column),
        n_values=len(set(non_null)),
    )


def sketch_table(
    table: Table,
    config: SketchConfig | None = None,
    hasher: MinHasher | None = None,
) -> TableSketch:
    """Produce the full :class:`TableSketch` for ``table``.

    Passing a pre-built ``hasher`` avoids recreating the hash family per
    table when sketching a whole corpus.
    """
    config = config or SketchConfig()
    hasher = hasher or config.build_hasher()
    if hasher.num_perm != config.num_perm:
        raise ValueError("hasher num_perm does not match config.num_perm")
    return TableSketch(
        table_name=table.name,
        description=table.description,
        column_sketches=[sketch_column(c, hasher) for c in table.columns],
        snapshot=content_snapshot(table, hasher, limit=config.snapshot_rows),
        config=config,
    )
