"""Sketching stack: MinHash, numerical sketches, content snapshots, LSH.

This package replaces the ``datasketch`` dependency the paper used and adds
the index structures its baselines need:

- :mod:`repro.sketch.minhash` — min-wise hashing over string sets with a
  universal hash family; supports Jaccard and containment estimation.
- :mod:`repro.sketch.numeric` — the paper's per-column "numerical sketch":
  ``[unique count, NaN count, cell width, 10th..90th percentile, mean, std,
  min, max]`` (§III-A).
- :mod:`repro.sketch.content` — the table-level content snapshot: a MinHash
  over the first 10 000 rows serialized as strings (§III-A).
- :mod:`repro.sketch.pipeline` — assembles all sketches for a table into a
  :class:`~repro.sketch.pipeline.TableSketch`, the model's raw input.
- :mod:`repro.sketch.lsh` — LSH Forest and LSH Ensemble over MinHash
  (baselines for join search), plus a generic banded MinHash-LSH index.
- :mod:`repro.sketch.simhash` — SimHash over dense vectors (WarpGate's index).
"""

from repro.sketch.minhash import (
    MinHash,
    MinHasher,
    estimate_containment,
    estimate_jaccard,
)
from repro.sketch.numeric import (
    NUMERICAL_SKETCH_DIM,
    NumericalSketch,
    numerical_sketch,
)
from repro.sketch.content import content_snapshot
from repro.sketch.interactions import INTERACTION_DIM, interaction_features
from repro.sketch.pipeline import ColumnSketch, SketchConfig, TableSketch, sketch_table
from repro.sketch.lsh import LshEnsemble, LshForest, MinHashLsh
from repro.sketch.simhash import SimHashIndex

__all__ = [
    "INTERACTION_DIM",
    "interaction_features",
    "MinHash",
    "MinHasher",
    "estimate_containment",
    "estimate_jaccard",
    "NUMERICAL_SKETCH_DIM",
    "NumericalSketch",
    "numerical_sketch",
    "content_snapshot",
    "ColumnSketch",
    "SketchConfig",
    "TableSketch",
    "sketch_table",
    "LshEnsemble",
    "LshForest",
    "MinHashLsh",
    "SimHashIndex",
]
