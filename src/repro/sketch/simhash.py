"""SimHash LSH over dense embedding vectors.

WarpGate (Cong et al., CIDR 2023) indexes column embeddings with SimHash:
random hyperplanes turn a vector into a bit signature; Hamming-close
signatures imply high cosine similarity. We implement the index with
multi-probe bucket lookup plus exact cosine re-ranking of candidates.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.utils.rng import spawn_rng


class SimHashIndex:
    """Random-hyperplane LSH with ``num_tables`` independent signatures."""

    def __init__(self, dim: int, bits: int = 16, num_tables: int = 4, seed: int = 7):
        self.dim = dim
        self.bits = bits
        self.num_tables = num_tables
        rng = spawn_rng(seed, "simhash")
        self._planes = rng.normal(size=(num_tables, bits, dim))
        self._buckets: list[dict[int, list]] = [defaultdict(list) for _ in range(num_tables)]
        self._vectors: dict = {}

    def _signature(self, table_index: int, vector: np.ndarray) -> int:
        bits = (self._planes[table_index] @ vector) >= 0.0
        out = 0
        for bit in bits:
            out = (out << 1) | int(bit)
        return out

    def insert(self, key, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of dim {self.dim}, got {vector.shape}")
        self._vectors[key] = vector
        for t in range(self.num_tables):
            self._buckets[t][self._signature(t, vector)].append(key)

    def query(self, vector: np.ndarray, k: int) -> list:
        """Top-``k`` keys by cosine similarity among LSH candidates.

        Falls back to brute force when the buckets yield fewer than ``k``
        candidates, so recall never collapses on small corpora.
        """
        vector = np.asarray(vector, dtype=np.float64)
        candidates: set = set()
        for t in range(self.num_tables):
            candidates.update(self._buckets[t].get(self._signature(t, vector), ()))
        if len(candidates) < k:
            candidates = set(self._vectors)
        scored = sorted(
            candidates, key=lambda key: -_cosine(vector, self._vectors[key])
        )
        return scored[:k]

    def __len__(self) -> int:
        return len(self._vectors)


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(a @ b) / denom
