"""SimHash: LSH over dense embedding vectors, and a mergeable item sketch.

WarpGate (Cong et al., CIDR 2023) indexes column embeddings with SimHash:
random hyperplanes turn a vector into a bit signature; Hamming-close
signatures imply high cosine similarity. We implement the index with
multi-probe bucket lookup plus exact cosine re-ranking of candidates.

:class:`SimHashSketch` is the other classic SimHash (Charikar 2002) — a
fingerprint of a *multiset of strings*, kept in the pre-thresholded form
(one signed vote counter per bit) precisely so it merges: adding the
counters of two sketches yields bit-for-bit the sketch of the combined
multiset, which is what live-table appends need.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.hashing import hash_string
from repro.utils.rng import spawn_rng


class SimHashIndex:
    """Random-hyperplane LSH with ``num_tables`` independent signatures."""

    def __init__(self, dim: int, bits: int = 16, num_tables: int = 4, seed: int = 7):
        self.dim = dim
        self.bits = bits
        self.num_tables = num_tables
        rng = spawn_rng(seed, "simhash")
        self._planes = rng.normal(size=(num_tables, bits, dim))
        self._buckets: list[dict[int, list]] = [defaultdict(list) for _ in range(num_tables)]
        self._vectors: dict = {}

    def _signature(self, table_index: int, vector: np.ndarray) -> int:
        bits = (self._planes[table_index] @ vector) >= 0.0
        out = 0
        for bit in bits:
            out = (out << 1) | int(bit)
        return out

    def insert(self, key, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of dim {self.dim}, got {vector.shape}")
        self._vectors[key] = vector
        for t in range(self.num_tables):
            self._buckets[t][self._signature(t, vector)].append(key)

    def query(self, vector: np.ndarray, k: int) -> list:
        """Top-``k`` keys by cosine similarity among LSH candidates.

        Falls back to brute force when the buckets yield fewer than ``k``
        candidates, so recall never collapses on small corpora.
        """
        vector = np.asarray(vector, dtype=np.float64)
        candidates: set = set()
        for t in range(self.num_tables):
            candidates.update(self._buckets[t].get(self._signature(t, vector), ()))
        if len(candidates) < k:
            candidates = set(self._vectors)
        scored = sorted(
            candidates, key=lambda key: -_cosine(vector, self._vectors[key])
        )
        return scored[:k]

    def __len__(self) -> int:
        return len(self._vectors)


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(a @ b) / denom


#: Default SimHashSketch width — one machine word.
SIMHASH_BITS = 64


@dataclass(frozen=True)
class SimHashSketch:
    """Charikar SimHash of a multiset of strings, in mergeable form.

    ``counts[i]`` is the signed vote of bit ``i`` — the number of items
    whose hash has bit ``i`` set minus the number whose hash has it clear.
    The fingerprint thresholds the votes at zero. Because the votes are
    plain sums, ``merge`` is elementwise addition and is *exact*: merging
    the sketches of two multisets equals sketching their concatenation.
    """

    counts: np.ndarray  # int64[bits], signed bit votes

    @property
    def bits(self) -> int:
        return int(self.counts.shape[0])

    def merge(self, other: "SimHashSketch") -> "SimHashSketch":
        """Sketch of the combined multiset — exact, by vote addition."""
        if self.bits != other.bits:
            raise ValueError(f"bit widths differ: {self.bits} vs {other.bits}")
        return SimHashSketch(self.counts + other.counts)

    def fingerprint(self) -> np.ndarray:
        """The thresholded bit vector, ``uint8[bits]`` of 0/1."""
        return (self.counts > 0).astype(np.uint8)

    def hamming(self, other: "SimHashSketch") -> int:
        """Hamming distance between the two fingerprints."""
        if self.bits != other.bits:
            raise ValueError(f"bit widths differ: {self.bits} vs {other.bits}")
        return int(np.sum(self.fingerprint() != other.fingerprint()))


def simhash_sketch(items: Iterable[str], bits: int = SIMHASH_BITS) -> SimHashSketch:
    """SimHash the *multiset* of items (duplicates vote repeatedly).

    Item bits come from splitmix64-finalized FNV-1a hashes — fully
    deterministic across processes, matching the repo-wide bitwise-
    reproducibility contract. Widths beyond 64 draw further splitmix
    words from the same seed hash.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    counts = np.zeros(bits, dtype=np.int64)
    n_words = -(-bits // 64)
    raw = np.fromiter((hash_string(x) for x in items), dtype=np.uint64)
    if raw.size == 0:
        return SimHashSketch(counts)
    with np.errstate(over="ignore"):
        for w in range(n_words):
            x = raw + np.uint64(w) * np.uint64(0x9E3779B97F4A7C15)
            x ^= x >> np.uint64(30)
            x *= np.uint64(0xBF58476D1CE4E5B9)
            x ^= x >> np.uint64(27)
            x *= np.uint64(0x94D049BB133111EB)
            x ^= x >> np.uint64(31)
            for b in range(min(64, bits - w * 64)):
                bit = (x >> np.uint64(b)) & np.uint64(1)
                votes = bit.astype(np.int64) * 2 - 1
                counts[w * 64 + b] = int(votes.sum())
    return SimHashSketch(counts)
