"""Table-level content snapshot (§III-A).

"Recognizing that row information could be crucial in detecting similarity of
tables, we create a sketch from the first 10000 rows. We convert each row into
a string and generate a MinHash signature from the set of rows."
"""

from __future__ import annotations

from repro.sketch.minhash import MinHash, MinHasher
from repro.table.schema import Table

#: Row budget from the paper.
CONTENT_SNAPSHOT_ROWS = 10_000

#: Cell separator used when a row is serialized to a single string. Unit
#: separator (0x1F) cannot appear in CSV cell text, so distinct rows never
#: collide through concatenation artifacts.
_ROW_SEP = "\x1f"


def row_strings(table: Table, limit: int = CONTENT_SNAPSHOT_ROWS) -> list[str]:
    """Serialize the first ``limit`` rows to strings (one string per row)."""
    return [_ROW_SEP.join(row) for row in table.rows(limit=limit)]


def content_snapshot(
    table: Table,
    hasher: MinHasher,
    limit: int = CONTENT_SNAPSHOT_ROWS,
) -> MinHash:
    """MinHash signature over the set of serialized rows."""
    return hasher.sketch(row_strings(table, limit=limit))
