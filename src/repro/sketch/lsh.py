"""Locality-sensitive indexes over MinHash signatures.

Three structures used by the paper's baselines:

- :class:`MinHashLsh` — the classic banded LSH index for Jaccard-threshold
  candidate retrieval (Leskovec et al., ch. 3).
- :class:`LshForest` — prefix-tree LSH supporting top-k queries without a
  fixed threshold (Bawa et al., WWW 2005); the paper's "LSH-Forest" join
  baseline.
- :class:`LshEnsemble` — containment-oriented partitioned LSH (Zhu et al.,
  VLDB 2016), provided for completeness of the join-search substrate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.sketch.minhash import MinHash, estimate_containment, estimate_jaccard


def _band_key(signature: np.ndarray, start: int, width: int) -> tuple:
    return tuple(int(x) for x in signature[start : start + width])


class MinHashLsh:
    """Banded MinHash LSH for Jaccard-threshold candidate generation.

    ``bands * rows_per_band`` must not exceed the signature length. Keys
    colliding with the query in at least one band are returned as candidates.
    """

    def __init__(self, num_perm: int, bands: int = 16):
        if num_perm % bands != 0:
            raise ValueError(f"bands={bands} must divide num_perm={num_perm}")
        self.num_perm = num_perm
        self.bands = bands
        self.rows_per_band = num_perm // bands
        self._tables: list[dict[tuple, set]] = [defaultdict(set) for _ in range(bands)]
        self._sketches: dict = {}

    def insert(self, key, sketch: MinHash) -> None:
        if sketch.num_perm != self.num_perm:
            raise ValueError("sketch width mismatch")
        self._sketches[key] = sketch
        for b in range(self.bands):
            start = b * self.rows_per_band
            self._tables[b][_band_key(sketch.signature, start, self.rows_per_band)].add(key)

    def query(self, sketch: MinHash) -> set:
        """All keys sharing at least one band with the query."""
        out: set = set()
        for b in range(self.bands):
            start = b * self.rows_per_band
            out |= self._tables[b].get(
                _band_key(sketch.signature, start, self.rows_per_band), set()
            )
        return out

    def __len__(self) -> int:
        return len(self._sketches)


@dataclass
class _ForestEntry:
    key: object
    sketch: MinHash


class LshForest:
    """LSH Forest: ``l`` prefix trees over permuted MinHash signatures.

    Top-k retrieval proceeds by longest-prefix collision: starting from the
    maximum depth, shrink the matched prefix until at least ``k`` candidates
    are collected, then rank candidates by estimated Jaccard.
    """

    def __init__(self, num_perm: int, num_trees: int = 8):
        if num_perm % num_trees != 0:
            raise ValueError(
                f"num_trees={num_trees} must divide num_perm={num_perm}"
            )
        self.num_perm = num_perm
        self.num_trees = num_trees
        self.depth = num_perm // num_trees
        # tree -> prefix-length -> prefix-tuple -> set of entry indices
        self._buckets: list[list[dict[tuple, set[int]]]] = [
            [defaultdict(set) for _ in range(self.depth + 1)]
            for _ in range(num_trees)
        ]
        self._entries: list[_ForestEntry] = []

    def insert(self, key, sketch: MinHash) -> None:
        if sketch.num_perm != self.num_perm:
            raise ValueError("sketch width mismatch")
        index = len(self._entries)
        self._entries.append(_ForestEntry(key, sketch))
        for t in range(self.num_trees):
            chunk = sketch.signature[t * self.depth : (t + 1) * self.depth]
            for d in range(1, self.depth + 1):
                self._buckets[t][d][tuple(int(x) for x in chunk[:d])].add(index)

    def query(self, sketch: MinHash, k: int) -> list:
        """Top-``k`` keys by estimated Jaccard among prefix-collision candidates."""
        if not self._entries:
            return []
        candidates: set[int] = set()
        for d in range(self.depth, 0, -1):
            for t in range(self.num_trees):
                chunk = sketch.signature[t * self.depth : (t + 1) * self.depth]
                candidates |= self._buckets[t][d].get(
                    tuple(int(x) for x in chunk[:d]), set()
                )
            if len(candidates) >= k:
                break
        scored = sorted(
            candidates,
            key=lambda i: -estimate_jaccard(sketch, self._entries[i].sketch),
        )
        return [self._entries[i].key for i in scored[:k]]

    def __len__(self) -> int:
        return len(self._entries)


class LshEnsemble:
    """Containment search over sets of very different sizes.

    Zhu et al. (VLDB 2016) partition the indexed sets by cardinality and tune
    banding per partition. At our corpus scales a faithful two-partition
    structure with per-partition banded LSH captures the algorithmic
    behaviour; candidates are re-ranked by estimated containment.
    """

    def __init__(self, num_perm: int, threshold: float = 0.5, partitions: int = 2):
        self.num_perm = num_perm
        self.threshold = threshold
        self.partitions = partitions
        self._items: list[tuple[object, MinHash, int]] = []
        self._indexes: list[MinHashLsh] | None = None
        self._bounds: list[int] = []

    def insert(self, key, sketch: MinHash, size: int) -> None:
        self._items.append((key, sketch, size))
        self._indexes = None  # rebuilt lazily on next query

    def _build(self) -> None:
        sizes = sorted(s for _, _, s in self._items)
        if not sizes:
            self._indexes = []
            return
        bounds = [
            sizes[min(len(sizes) - 1, (i + 1) * len(sizes) // self.partitions)]
            for i in range(self.partitions)
        ]
        bounds[-1] = sizes[-1] + 1
        self._bounds = bounds
        # Containment search must surface candidates whose Jaccard is low
        # because they are much larger than the query. Zhu et al. tune the
        # banding per size partition; larger-set partitions get the most
        # aggressive banding (one row per band).
        self._indexes = []
        for partition in range(self.partitions):
            rows = 1 if partition == self.partitions - 1 else 2
            bands = self.num_perm // rows
            self._indexes.append(MinHashLsh(self.num_perm, bands=bands))
        for key, sketch, size in self._items:
            self._indexes[self._partition(size)].insert((key, size), sketch)

    def _partition(self, size: int) -> int:
        for i, bound in enumerate(self._bounds):
            if size < bound:
                return i
        return len(self._bounds) - 1

    def query(self, sketch: MinHash, query_size: int, k: int) -> list:
        """Top-``k`` keys by estimated containment of the query in them."""
        if self._indexes is None:
            self._build()
        scored: list[tuple[float, object]] = []
        seen: set = set()
        for index in self._indexes or []:
            for key, size in index.query(sketch):
                if key in seen:
                    continue
                seen.add(key)
                candidate = index._sketches[(key, size)]
                score = estimate_containment(sketch, candidate, query_size, size)
                scored.append((score, key))
        scored.sort(key=lambda pair: -pair[0])
        return [key for _, key in scored[:k]]

    def __len__(self) -> int:
        return len(self._items)
