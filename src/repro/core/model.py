"""The TabSketchFM encoder (§III-B, Fig. 1 right panel).

The input embedding is the *sum* of:

1. token embeddings,
2. within-column token-position embeddings,
3. column-position embeddings,
4. column-type embeddings,
5. MinHash sketch embeddings (linear projection of the [values ‖ words]
   signature vector; the content snapshot for description positions),
6. numerical sketch embeddings (linear projection of the statistics vector),

plus a BERT-style segment embedding for cross-encoder pairs, followed by
LayerNorm + dropout and the transformer trunk. The MLM head mirrors BERT's:
dense → GELU → LayerNorm → vocabulary projection.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TabSketchFMConfig
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor, concat
from repro.nn.transformer import TransformerEncoder
from repro.sketch.interactions import INTERACTION_DIM
from repro.sketch.numeric import NUMERICAL_SKETCH_DIM
from repro.utils.rng import spawn_rng


class TabSketchFM(Module):
    """Sketch-based tabular encoder."""

    def __init__(self, config: TabSketchFMConfig):
        super().__init__()
        self.config = config
        rng = spawn_rng(config.seed, "tabsketchfm-init")
        dim = config.dim

        self.token_embedding = Embedding(config.vocab_size, dim, rng=rng)
        self.token_position_embedding = Embedding(config.max_token_positions, dim, rng=rng)
        self.column_position_embedding = Embedding(config.max_columns, dim, rng=rng)
        self.column_type_embedding = Embedding(config.num_column_types, dim, rng=rng)
        self.segment_embedding = Embedding(config.num_segments, dim, rng=rng)
        self.minhash_projection = Linear(config.minhash_input_dim, dim, rng=rng)
        self.numeric_projection = Linear(NUMERICAL_SKETCH_DIM, dim, rng=rng)
        # Cross-table agreement features at [CLS] for pair encodings; see
        # repro.sketch.interactions for the scale-down rationale.
        self.interaction_projection = Linear(INTERACTION_DIM, dim, rng=rng)
        self.input_norm = LayerNorm(dim)
        self.input_dropout = Dropout(config.dropout, rng=rng)

        self.encoder = TransformerEncoder(config.encoder_config())

        # MLM head (BERT's transform + decoder).
        self.mlm_transform = Linear(dim, dim, rng=rng)
        self.mlm_norm = LayerNorm(dim)
        self.mlm_decoder = Linear(dim, config.vocab_size, rng=rng)

    # ------------------------------------------------------------------ #
    def embed_inputs(self, batch: dict[str, np.ndarray]) -> Tensor:
        """Sum the six embeddings (plus segments) into ``(B, S, D)``."""
        total = self.token_embedding(batch["token_ids"])
        total = total + self.token_position_embedding(batch["token_positions"])
        total = total + self.column_position_embedding(batch["column_positions"])
        total = total + self.column_type_embedding(batch["column_types"])
        total = total + self.segment_embedding(batch["segment_ids"])
        total = total + self.minhash_projection(Tensor(batch["minhash"]))
        total = total + self.numeric_projection(Tensor(batch["numeric"]))
        interaction = batch.get("interaction")
        if interaction is not None and np.any(interaction):
            projected = self.interaction_projection(Tensor(interaction))
            batch_size, seq_len, dim = total.shape
            rest = Tensor(np.zeros((batch_size, seq_len - 1, dim)))
            cls_only = concat(
                [projected.reshape(batch_size, 1, dim), rest], axis=1
            )
            total = total + cls_only
        return self.input_dropout(self.input_norm(total))

    def forward(self, batch: dict[str, np.ndarray]) -> Tensor:
        """Hidden states ``(B, S, D)`` for a batched encoding."""
        embedded = self.embed_inputs(batch)
        return self.encoder(embedded, batch["attention_mask"])

    def pool(self, hidden: Tensor) -> Tensor:
        """BERT pooler output of the first token, ``(B, D)``."""
        return self.encoder.pool(hidden)

    def mlm_logits(self, hidden: Tensor) -> Tensor:
        """Vocabulary logits ``(B, S, V)`` for the MLM objective."""
        transformed = self.mlm_norm(self.mlm_transform(hidden).gelu())
        return self.mlm_decoder(transformed)

    # ------------------------------------------------------------------ #
    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))
