"""TabSketchFM core: the paper's primary contribution.

- :mod:`repro.core.config` — model hyper-parameters and sketch-ablation flags.
- :mod:`repro.core.inputs` — turns a :class:`~repro.sketch.TableSketch` (or a
  pair, for cross-encoding) into the model's aligned input arrays: token ids,
  within-column token positions, column positions, column types, segment ids,
  per-position MinHash vectors and numerical-sketch vectors (Fig. 1).
- :mod:`repro.core.model` — the encoder that sums the six embeddings of
  §III-B and runs the BERT-style trunk; plus the MLM head.
- :mod:`repro.core.pretrain` — whole-column masking, column-shuffle
  augmentation and the MLM pre-training loop (§III-C, Figs. 2a/3).
- :mod:`repro.core.finetune` — cross-encoders for binary / regression /
  multi-label LakeBench tasks (§III-D, Fig. 2b).
- :mod:`repro.core.engine` — the batched ``EmbeddingEngine``: one shared
  forward per batch produces table *and* column embeddings, with dynamic
  padding and length bucketing for lake-scale offline indexing.
- :mod:`repro.core.embed` — per-table embedding shim over the engine and
  the normalized SBERT-concatenation of §IV-C (TabSketchFM-SBERT).
- :mod:`repro.core.ablation` — the sketch subsets used in Tables III/IV.
"""

from repro.core.config import SketchSelection, TabSketchFMConfig
from repro.core.inputs import EncodedTable, InputEncoder, PairEncoding
from repro.core.model import TabSketchFM
from repro.core.pretrain import (
    MaskedExample,
    PretrainConfig,
    Pretrainer,
    augment_tables,
    make_masked_examples,
)
from repro.core.finetune import (
    CrossEncoder,
    FinetuneConfig,
    Finetuner,
    PairExample,
    TaskType,
)
from repro.core.embed import TableEmbedder, concat_normalized
from repro.core.engine import EmbeddingEngine, TableEmbeddings, sketch_corpus
from repro.core.searcher import DualEncoderSearcher, TabSketchFMSearcher
from repro.core.ablation import ablation_selections

__all__ = [
    "SketchSelection",
    "TabSketchFMConfig",
    "EncodedTable",
    "InputEncoder",
    "PairEncoding",
    "TabSketchFM",
    "MaskedExample",
    "PretrainConfig",
    "Pretrainer",
    "augment_tables",
    "make_masked_examples",
    "CrossEncoder",
    "FinetuneConfig",
    "Finetuner",
    "PairExample",
    "TaskType",
    "TableEmbedder",
    "concat_normalized",
    "EmbeddingEngine",
    "TableEmbeddings",
    "sketch_corpus",
    "DualEncoderSearcher",
    "TabSketchFMSearcher",
    "ablation_selections",
]
