"""Embedding extraction for search (§III-E, §IV-C).

"We extract the table embeddings from the finetuned TabSketchFM, and use that
to create nearest neighbor indexes for search tasks." For union search the
paper uses *column* embeddings instead (following Starmie) — the mean of each
column's contextualized token states.

Also implements the TabSketchFM-SBERT combination: "we concatenated the two
embeddings after normalizing them so the means and variances of the two
vectors were in the same scale."
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import EmbeddingEngine
from repro.core.inputs import InputEncoder
from repro.core.model import TabSketchFM
from repro.sketch.pipeline import TableSketch


class TableEmbedder:
    """Per-table embedding API — a compatibility shim over the batched
    :class:`~repro.core.engine.EmbeddingEngine` (each call is a batch of
    one, so table and column embeddings still come from a single forward).

    Column embeddings are the first+last-layer average over the column's
    token span — the standard "first-last-avg" recipe from the
    sentence-embedding literature: the input layer carries the undiluted
    sketch geometry (value overlap), the last layer carries table context.
    Columns beyond the encoder's sequence budget fall back to the table
    embedding, which the shared forward has already produced.
    """

    def __init__(self, model: TabSketchFM, encoder: InputEncoder):
        self.model = model
        self.encoder = encoder
        self.engine = EmbeddingEngine(model, encoder)

    @property
    def dim(self) -> int:
        return self.model.config.dim

    # ------------------------------------------------------------------ #
    def table_embedding(self, sketch: TableSketch) -> np.ndarray:
        """Pooler output for a single-table input, shape ``(dim,)``."""
        return self.engine.embed_batch([sketch])[0].table

    def column_embeddings(self, sketch: TableSketch) -> np.ndarray:
        """Per-column embeddings, shape ``(n_cols, dim)`` (see class doc)."""
        return self.engine.embed_batch([sketch])[0].columns

    # ------------------------------------------------------------------ #
    def table_embeddings(self, sketches: list[TableSketch]) -> np.ndarray:
        """Stacked table embeddings, shape ``(n_tables, dim)`` — batched."""
        return self.engine.table_embeddings(sketches)


def finalize_column_vectors(
    columns: np.ndarray,
    sketch: TableSketch,
    sbert=None,
    table=None,
) -> list[tuple[str, np.ndarray]]:
    """Index-ready ``(column, vector)`` pairs: trunk columns ‖ optional
    SBERT value half.

    The single shared construction behind both
    :meth:`repro.lake.catalog.LakeCatalog.column_vector_pairs` and
    :class:`repro.core.searcher.TabSketchFMSearcher`, so lake answers match
    the one-shot pipeline bit-for-bit. The SBERT half needs raw cell values:
    with ``sbert`` set and no ``table``, this raises a clear ``ValueError``.
    """
    if sbert is not None and table is None:
        raise ValueError(
            f"table {sketch.table_name!r} has no Table object but sbert is "
            "enabled; the SBERT half needs raw cell values"
        )
    out: list[tuple[str, np.ndarray]] = []
    for index, column_sketch in enumerate(sketch.column_sketches):
        vector = columns[index]
        if sbert is not None:
            value_vec = sbert.encode_column(table.column(column_sketch.name))
            vector = concat_normalized(vector, value_vec)
        out.append((column_sketch.name, vector))
    return out


def standardize(vector: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance rescaling of one vector (degenerate-safe)."""
    std = float(np.std(vector))
    if std == 0.0:
        return vector - float(np.mean(vector))
    return (vector - float(np.mean(vector))) / std


def concat_normalized(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """TabSketchFM-SBERT combination: standardize each part, then concat.

    Standardizing puts "the means and variances of the two vectors ... in the
    same scale" so that neither embedding dominates nearest-neighbour
    distances (§IV-C1). Each half is additionally scaled by 1/sqrt(width):
    with per-dim unit variance, a wider half would otherwise contribute more
    to distances purely by having more dimensions.
    """
    left = standardize(first) / np.sqrt(max(1, first.size))
    right = standardize(second) / np.sqrt(max(1, second.size))
    return np.concatenate([left, right])
