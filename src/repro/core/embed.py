"""Embedding extraction for search (§III-E, §IV-C).

"We extract the table embeddings from the finetuned TabSketchFM, and use that
to create nearest neighbor indexes for search tasks." For union search the
paper uses *column* embeddings instead (following Starmie) — the mean of each
column's contextualized token states.

Also implements the TabSketchFM-SBERT combination: "we concatenated the two
embeddings after normalizing them so the means and variances of the two
vectors were in the same scale."
"""

from __future__ import annotations

import numpy as np

from repro.core.inputs import InputEncoder
from repro.core.model import TabSketchFM
from repro.nn.tensor import no_grad
from repro.sketch.pipeline import TableSketch


class TableEmbedder:
    """Extracts table- and column-level embeddings from a (fine-tuned) trunk."""

    def __init__(self, model: TabSketchFM, encoder: InputEncoder):
        self.model = model
        self.encoder = encoder

    @property
    def dim(self) -> int:
        return self.model.config.dim

    # ------------------------------------------------------------------ #
    def table_embedding(self, sketch: TableSketch) -> np.ndarray:
        """Pooler output for a single-table input, shape ``(dim,)``."""
        encoding = self.encoder.encode_single(sketch)
        from repro.core.inputs import batch_encodings

        self.model.eval()
        with no_grad():
            hidden = self.model(batch_encodings([encoding]))
            pooled = self.model.pool(hidden)
        return pooled.numpy()[0].copy()

    def column_embeddings(self, sketch: TableSketch) -> np.ndarray:
        """Per-column embeddings: first+last-layer average over the column's
        token span, shape ``(n_cols, dim)``.

        Averaging the input-layer states with the final contextual states is
        the standard "first-last-avg" recipe from the sentence-embedding
        literature: the input layer carries the undiluted sketch geometry
        (value overlap), the last layer carries table context. At full paper
        scale the fine-tuned trunk preserves both in its last layer; our
        laptop-scale trunk needs the explicit residual emphasis.

        Columns beyond the encoder's sequence budget fall back to the table
        embedding (rare at our scales; keeps output aligned with the sketch).
        """
        encoded = self.encoder.encode_table(sketch)
        segments = np.zeros(encoded.length, dtype=np.int64)
        encoding = self.encoder._finalize(
            encoded.token_ids,
            encoded.token_positions,
            encoded.column_positions,
            encoded.column_types,
            segments,
            encoded.minhash,
            encoded.numeric,
        )
        from repro.core.inputs import batch_encodings

        self.model.eval()
        with no_grad():
            batch = batch_encodings([encoding])
            embedded = self.model.embed_inputs(batch)
            contextual = self.model.encoder(embedded, batch["attention_mask"])
            hidden = ((embedded + contextual) * 0.5).numpy()[0]
        max_len = self.encoder.config.max_seq_len
        fallback = None
        out = np.zeros((sketch.n_cols, self.dim))
        for i, span in enumerate(encoded.spans):
            stop = min(span.stop, max_len)
            if span.start < max_len and stop > span.start:
                out[i] = hidden[span.start : stop].mean(axis=0)
            else:
                if fallback is None:
                    fallback = self.table_embedding(sketch)
                out[i] = fallback
        for i in range(len(encoded.spans), sketch.n_cols):
            if fallback is None:
                fallback = self.table_embedding(sketch)
            out[i] = fallback
        return out

    # ------------------------------------------------------------------ #
    def table_embeddings(self, sketches: list[TableSketch]) -> np.ndarray:
        """Stacked table embeddings, shape ``(n_tables, dim)``."""
        if not sketches:
            return np.zeros((0, self.dim))
        return np.stack([self.table_embedding(s) for s in sketches])


def standardize(vector: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance rescaling of one vector (degenerate-safe)."""
    std = float(np.std(vector))
    if std == 0.0:
        return vector - float(np.mean(vector))
    return (vector - float(np.mean(vector))) / std


def concat_normalized(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """TabSketchFM-SBERT combination: standardize each part, then concat.

    Standardizing puts "the means and variances of the two vectors ... in the
    same scale" so that neither embedding dominates nearest-neighbour
    distances (§IV-C1). Each half is additionally scaled by 1/sqrt(width):
    with per-dim unit variance, a wider half would otherwise contribute more
    to distances purely by having more dimensions.
    """
    left = standardize(first) / np.sqrt(max(1, first.size))
    right = standardize(second) / np.sqrt(max(1, second.size))
    return np.concatenate([left, right])
