"""Configuration objects for TabSketchFM."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.nn.transformer import TransformerEncoderConfig
from repro.sketch.pipeline import SketchConfig


@dataclass(frozen=True)
class SketchSelection:
    """Which sketch families feed the input embedding (Tables III/IV).

    The paper ablates three groups: column MinHash sketches (cell values +
    words), numerical sketches, and the table-level content snapshot. A
    disabled group contributes a zero vector in the embedding sum, exactly
    like an absent feature.
    """

    use_minhash: bool = True
    use_numeric: bool = True
    use_snapshot: bool = True

    def tag(self) -> str:
        parts = []
        if self.use_minhash:
            parts.append("mh")
        if self.use_numeric:
            parts.append("num")
        if self.use_snapshot:
            parts.append("cs")
        return "+".join(parts) if parts else "none"


@dataclass(frozen=True)
class TabSketchFMConfig:
    """All hyper-parameters of the model and its input layer.

    The paper uses BERT-base (12 layers, hidden 768, 118M parameters); this
    reproduction defaults to a laptop-scale trunk (2 layers, hidden 64) —
    see DESIGN.md §1 for the substitution rationale. Every structural element
    of the input layer is preserved at full fidelity.
    """

    vocab_size: int = 2048
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_dim: int = 128
    dropout: float = 0.1
    max_seq_len: int = 160
    #: Upper bound on the within-column token position embedding table.
    max_token_positions: int = 32
    #: Upper bound on column positions (0 reserved for the description).
    max_columns: int = 32
    #: column types: 0 pad/description, 1 string, 2 int, 3 float, 4 date.
    num_column_types: int = 5
    #: segments: table A vs table B in the cross-encoder.
    num_segments: int = 2
    sketch: SketchConfig = field(default_factory=lambda: SketchConfig(num_perm=64))
    selection: SketchSelection = field(default_factory=SketchSelection)
    seed: int = 0

    @property
    def minhash_input_dim(self) -> int:
        """Width of per-position MinHash vectors: values ‖ words halves."""
        return 2 * self.sketch.num_perm

    def encoder_config(self) -> TransformerEncoderConfig:
        return TransformerEncoderConfig(
            dim=self.dim,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            ffn_dim=self.ffn_dim,
            dropout=self.dropout,
            seed=self.seed,
        )

    def with_selection(self, selection: SketchSelection) -> "TabSketchFMConfig":
        return replace(self, selection=selection)
