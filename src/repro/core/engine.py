"""Batched ``EmbeddingEngine``: one trunk forward per batch of tables.

The per-table embedding path (`TableEmbedder`) historically paid two to
three forwards per table — one for the column embeddings, one for the
pooler/table embedding, and possibly one more as an over-budget fallback —
each padded to the global ``max_seq_len``. For lake-scale offline indexing
(the deployment recipe of §V) that is the throughput bottleneck: Starmie and
friends treat batched offline encoding as *the* lever for indexing a lake.

This engine restructures the path around three ideas:

1. **One shared forward per batch.** ``model.embed_inputs`` →
   ``model.encoder`` runs once per batch; the pooler output (table
   embeddings) and the first-last-avg hidden states (column embeddings) are
   both read off that single invocation, so the per-table double forward is
   gone — and the over-budget fallback (a column beyond the sequence budget
   falls back to the table embedding) is free batch-wide, because the pooled
   vector is already in hand.
2. **Dynamic padding.** Inputs are finalized at their natural length and
   padded to the *batch* max instead of ``max_seq_len`` (attention is
   O(S²); short tables stop paying full-sequence cost). Padded positions are
   masked out of attention, so results match the fixed-width path to
   floating-point noise.
3. **Length bucketing.** ``embed_corpus`` sorts tables by encoded length
   before chunking, so each batch is near-uniform and wastes minimal
   padding; results are returned in the caller's order regardless.
4. **Fused inference kernels.** Every forward here runs under ``no_grad``,
   which (with ``$REPRO_NN_LAZY`` on, the default) puts the trunk in the
   lazy, fusing evaluation mode of :mod:`repro.nn.lazy`: elementwise
   chains run as cached fused kernels keyed by shape bucket — the same
   buckets this engine's length bucketing produces — so every forward
   after the first hits the kernel cache. ``fusion_stats`` surfaces the
   counters.

``forward_calls`` counts trunk invocations: embedding N tables at batch
size B performs exactly ``ceil(N / B)`` forwards.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.inputs import EncodedTable, InputEncoder, PairEncoding, batch_encodings
from repro.core.model import TabSketchFM
from repro.nn import lazy
from repro.nn.tensor import no_grad
from repro.sketch.pipeline import SketchConfig, TableSketch, sketch_table
from repro.table.schema import Table

DEFAULT_BATCH_SIZE = 16

_FORWARDS = obs.counter(
    "engine_forwards_total", "Trunk forward passes run by the embedding engine"
)
_FORWARD_MS = obs.histogram(
    "engine_forward_duration_ms",
    "Wall time of one trunk forward (finalize + encode + readout), milliseconds",
)
_TOKENS = obs.counter(
    "engine_tokens_total", "Real (unpadded) tokens pushed through the trunk"
)
_PADDED_WASTE = obs.counter(
    "engine_padded_tokens_total",
    "Padding tokens wasted per forward, by power-of-two batch-length bucket",
    ("bucket",),
)
_POOL_PROCS = obs.gauge(
    "engine_pool_procs", "Worker processes in the live ingest process pool"
)
_POOL_BATCHES = obs.counter(
    "engine_pool_batches_total",
    "Batches embedded inside pool worker processes",
)
_POOL_BATCH_MS = obs.histogram(
    "engine_pool_batch_duration_ms",
    "Worker-side wall time of one pooled batch forward, milliseconds",
)
_POOL_UTILIZATION = obs.gauge(
    "engine_pool_utilization",
    "Busy fraction of the last process-pool embed_corpus call: summed "
    "worker batch time / (procs x call wall time)",
)


class IngestPoolError(RuntimeError):
    """A process-pool ingest failed because a worker process died.

    The failing :meth:`EmbeddingEngine.embed_corpus` call raises before
    returning any embeddings, so callers (``LakeCatalog.add_tables``)
    register nothing — no partial catalog state survives a worker death.
    """


# ----------------------------------------------------------------------- #
# Process-pool worker side.
#
# Spawn-safe by construction: the initializer receives only a bundle
# directory path (weights + config + vocab written by the parent via
# ``repro.lake.bundle.save_bundle``) and rebuilds the whole embedding stack
# once per worker. Per-call payloads are the already-encoded input arrays
# (:class:`~repro.core.inputs.EncodedTable` is plain numpy), and results
# come back as stacked ``(table_vecs, col_vecs, col_counts)`` arrays — no
# model objects ever cross the process boundary.
# ----------------------------------------------------------------------- #
_WORKER_ENGINE: "EmbeddingEngine | None" = None


def _pool_initializer(bundle_dir: str, batch_size: int, bucket: bool) -> None:
    """Load the weight bundle exactly once per worker process."""
    global _WORKER_ENGINE
    from repro.lake.bundle import load_bundle

    model, encoder, _ = load_bundle(bundle_dir)
    _WORKER_ENGINE = EmbeddingEngine(
        model, encoder, batch_size=batch_size, bucket=bucket
    )


def _pool_forward(payload):
    """Run one batch forward in a worker; arrays in, arrays out.

    ``payload`` is ``(encodeds, n_cols)``; the return is
    ``(table_vecs (B, dim), col_vecs (sum n_cols, dim), col_counts (B,),
    worker_ms)`` — the parent splits ``col_vecs`` back per table.
    """
    encodeds, n_cols = payload
    assert _WORKER_ENGINE is not None, "pool worker was never initialized"
    started = time.perf_counter()
    results = _WORKER_ENGINE._forward_group(encodeds, n_cols)
    tables = np.stack([r.table for r in results])
    columns = np.concatenate([r.columns for r in results])
    counts = np.asarray(n_cols, dtype=np.int64)
    return tables, columns, counts, (time.perf_counter() - started) * 1000.0


def _shutdown_pool(executor: ProcessPoolExecutor, bundle_dir) -> None:
    """Finalizer shared by explicit close, pool replacement, and GC."""
    executor.shutdown(wait=False, cancel_futures=True)
    bundle_dir.cleanup()


@dataclass
class TableEmbeddings:
    """Both embedding views of one table, from one shared forward."""

    table: np.ndarray    # (dim,) — BERT pooler output
    columns: np.ndarray  # (n_cols, dim) — first-last-avg over column spans


def sketch_corpus(
    tables: list[Table],
    config: SketchConfig,
    hasher=None,
    workers: int | None = None,
) -> list[TableSketch]:
    """Sketch a corpus, optionally fanning out across ``workers`` threads.

    Sketching is pure read-only numpy over an immutable hash family
    (:class:`~repro.sketch.minhash.MinHasher` is stateless after
    construction), so a thread pool is safe; it overlaps the hashing of one
    table with the numpy reductions of another during bulk ingest.
    """
    hasher = hasher or config.build_hasher()
    if workers and workers > 1 and len(tables) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda t: sketch_table(t, config, hasher), tables)
            )
    return [sketch_table(t, config, hasher) for t in tables]


class EmbeddingEngine:
    """Produces table + column embeddings, one forward per batch."""

    def __init__(
        self,
        model: TabSketchFM,
        encoder: InputEncoder,
        batch_size: int = DEFAULT_BATCH_SIZE,
        bucket: bool = True,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.encoder = encoder
        self.batch_size = batch_size
        self.bucket = bucket
        #: Trunk invocations — the observable "one forward per batch" win.
        self.forward_calls = 0
        # Guards the counter when embed_corpus fans batches across threads;
        # the forward math itself is pure reads of frozen parameters (and
        # graph construction is off per-thread under no_grad).
        self._counter_lock = threading.Lock()
        # Lazily-created spawn pool for process_workers > 1; reused across
        # embed_corpus calls so steady-state ingest pays the worker startup
        # (spawn + bundle load) once, not per call.
        self._pool: ProcessPoolExecutor | None = None
        self._pool_procs = 0
        self._pool_finalizer: weakref.finalize | None = None

    @property
    def dim(self) -> int:
        return self.model.config.dim

    @property
    def fusion_stats(self) -> dict:
        """Lazy-engine fusion counters as plain ints.

        ``kernels_executed`` / ``cache_hits`` / ``cache_misses`` /
        ``fused_softmax`` / ``fused_layernorm`` / ``ops_fused`` plus the
        current cache size and whether lazy mode is enabled — the
        process-wide view from :func:`repro.nn.lazy.cache_info` (fusion is
        per-process, not per-engine).
        """
        return lazy.cache_info()

    # ------------------------------------------------------------------ #
    # Process-pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self, procs: int) -> ProcessPoolExecutor:
        """The live spawn pool at ``procs`` workers, (re)built on demand.

        Building a pool snapshots the current weights into a temp bundle
        dir (``repro.lake.bundle.save_bundle`` — float64 npz, so the
        round-trip is bit-exact) and starts ``procs`` spawn workers whose
        initializer loads it once. Mutating the model afterwards requires
        :meth:`close_process_pool` so the next call re-snapshots.
        """
        if self._pool is not None and self._pool_procs == procs:
            return self._pool
        self.close_process_pool()
        from repro.lake.bundle import save_bundle

        bundle_dir = tempfile.TemporaryDirectory(prefix="repro-engine-pool-")
        save_bundle(bundle_dir.name, self.model, self.encoder.tokenizer)
        executor = ProcessPoolExecutor(
            max_workers=procs,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_pool_initializer,
            initargs=(bundle_dir.name, self.batch_size, self.bucket),
        )
        self._pool = executor
        self._pool_procs = procs
        # GC/interpreter-exit safety net; explicit close uses it too.
        self._pool_finalizer = weakref.finalize(
            self, _shutdown_pool, executor, bundle_dir
        )
        _POOL_PROCS.set(procs)
        return executor

    def close_process_pool(self) -> None:
        """Tear down the worker pool (and its temp weight bundle), if any."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()
            self._pool_finalizer = None
        self._pool = None
        self._pool_procs = 0
        _POOL_PROCS.set(0)

    def _embed_groups_pooled(
        self,
        procs: int,
        groups: "list[list[int]]",
        encodeds: "list[EncodedTable]",
        n_cols_all: "list[int]",
    ) -> "list[list[TableEmbeddings]]":
        """Fan length-bucketed groups across the spawn pool.

        Each group is one worker-side forward; results come back as
        ``(table_vecs, col_vecs, col_counts)`` arrays and are unpacked
        into the same :class:`TableEmbeddings` the in-process path builds
        — bitwise-identical, since the workers run the identical forward
        on a bit-exact copy of the weights.
        """
        pool = self._ensure_pool(procs)
        started = time.perf_counter()
        per_group: list[list[TableEmbeddings]] = []
        worker_ms = 0.0
        try:
            # submit() itself raises BrokenProcessPool when the executor
            # already noticed a dead worker, so it lives inside the guard.
            futures = [
                pool.submit(
                    _pool_forward,
                    ([encodeds[i] for i in group], [n_cols_all[i] for i in group]),
                )
                for group in groups
            ]
            for future in futures:
                tables, columns, counts, batch_ms = future.result()
                worker_ms += batch_ms
                group_results: list[TableEmbeddings] = []
                offset = 0
                for j in range(tables.shape[0]):
                    n = int(counts[j])
                    group_results.append(
                        TableEmbeddings(
                            table=tables[j],
                            columns=columns[offset : offset + n],
                        )
                    )
                    offset += n
                per_group.append(group_results)
                if obs.enabled():
                    _POOL_BATCHES.inc()
                    _POOL_BATCH_MS.observe(batch_ms)
        except BrokenProcessPool as exc:
            # A worker died mid-batch (OOM kill, crash). The pool is
            # unusable — drop it so the next call builds a fresh one — and
            # fail the whole ingest loudly: no embeddings are returned, so
            # the caller registers nothing (no partial catalog state).
            self.close_process_pool()
            raise IngestPoolError(
                f"ingest worker process died mid-batch (pool of {procs}); "
                "no tables from this call were embedded or ingested"
            ) from exc
        with self._counter_lock:
            self.forward_calls += len(groups)
        if obs.enabled():
            wall_ms = (time.perf_counter() - started) * 1000.0
            _POOL_UTILIZATION.set(
                min(1.0, worker_ms / (procs * wall_ms)) if wall_ms > 0 else 0.0
            )
        return per_group

    # ------------------------------------------------------------------ #
    def _finalize(self, encoded: EncodedTable) -> PairEncoding:
        """Finalize one encoded table at its natural (clamped) length."""
        segments = np.zeros(encoded.length, dtype=np.int64)
        return self.encoder._finalize(
            encoded.token_ids,
            encoded.token_positions,
            encoded.column_positions,
            encoded.column_types,
            segments,
            encoded.minhash,
            encoded.numeric,
            target_length=encoded.length,
        )

    def _forward_group(
        self, encodeds: list[EncodedTable], n_cols: list[int]
    ) -> list[TableEmbeddings]:
        """One shared forward for a group: pooler + first-last-avg states.

        Finalization (padding) happens here, per group, so a corpus-sized
        call never holds two corpus-sized copies of the input arrays.
        """
        pad_id = self.encoder.tokenizer.vocabulary.pad_id
        with obs.span("engine.forward", tables=len(encodeds)) as forward:
            batch = batch_encodings(
                [self._finalize(encoded) for encoded in encodeds], pad_token_id=pad_id
            )
            self.model.eval()
            with no_grad():
                embedded = self.model.embed_inputs(batch)
                contextual = self.model.encoder(embedded, batch["attention_mask"])
                pooled = self.model.pool(contextual).numpy()
                first_last = ((embedded + contextual) * 0.5).numpy()
        with self._counter_lock:
            self.forward_calls += 1
        if obs.enabled():
            lengths = [encoded.length for encoded in encodeds]
            padded_len = max(lengths)
            waste = padded_len * len(lengths) - sum(lengths)
            bucket = 1 << max(0, padded_len - 1).bit_length()
            _FORWARDS.inc()
            _FORWARD_MS.observe(forward.duration_ms)
            _TOKENS.inc(sum(lengths))
            _PADDED_WASTE.labels(bucket=str(bucket)).inc(waste)

        max_len = self.encoder.config.max_seq_len
        results: list[TableEmbeddings] = []
        for i, encoded in enumerate(encodeds):
            table_vec = pooled[i].copy()
            columns = np.zeros((n_cols[i], self.dim))
            for j, span in enumerate(encoded.spans[: n_cols[i]]):
                stop = min(span.stop, max_len)
                if span.start < max_len and stop > span.start:
                    columns[j] = first_last[i, span.start : stop].mean(axis=0)
                else:
                    # Over-budget column: the pooled table embedding is the
                    # fallback, already computed in this same forward.
                    columns[j] = table_vec
            for j in range(len(encoded.spans), n_cols[i]):
                columns[j] = table_vec
            results.append(TableEmbeddings(table=table_vec, columns=columns))
        return results

    # ------------------------------------------------------------------ #
    def embed_batch(self, sketches: list[TableSketch]) -> list[TableEmbeddings]:
        """Embed up to one batch of sketches in a *single* forward pass."""
        if not sketches:
            return []
        encodeds = [self.encoder.encode_table(sketch) for sketch in sketches]
        return self._forward_group(encodeds, [s.n_cols for s in sketches])

    def embed_corpus(
        self,
        sketches: list[TableSketch],
        batch_size: int | None = None,
        workers: int | None = None,
        process_workers: int | None = None,
    ) -> list[TableEmbeddings]:
        """Embed a whole corpus in ``ceil(N / batch_size)`` forwards.

        With bucketing on, tables are grouped by encoded length so each
        batch pads to a near-uniform max; output order always matches the
        input order. ``workers`` fans independent batch forwards across a
        thread pool (each batch's math touches only its own arrays, so
        results are bitwise-identical to the sequential path; the BLAS
        matmuls release the GIL, which is where the overlap comes from).

        ``process_workers > 1`` fans the same groups across a persistent
        spawn pool instead — true multi-core scaling past the GIL. Each
        worker loads the weight bundle once at startup; batches travel as
        encoded arrays and results return as stacked vector arrays, so
        nothing heavyweight is pickled per call, and the embeddings are
        bitwise-identical to the in-process path. ``process_workers`` of
        ``None``/0/1 is *exactly* the serial/threaded path (no pool, no
        temp bundle); it takes precedence over ``workers`` when both are
        set above 1.
        """
        if batch_size is None:
            batch_size = self.batch_size
        elif batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if process_workers is not None and process_workers < 0:
            raise ValueError(
                f"process_workers must be >= 0, got {process_workers}"
            )
        if not sketches:
            return []
        encodeds = [self.encoder.encode_table(sketch) for sketch in sketches]
        order = list(range(len(sketches)))
        if self.bucket:
            order.sort(key=lambda i: encodeds[i].length)
        groups = [
            order[start : start + batch_size]
            for start in range(0, len(order), batch_size)
        ]
        n_cols_all = [sketch.n_cols for sketch in sketches]

        results: list[TableEmbeddings | None] = [None] * len(sketches)
        if process_workers and process_workers > 1:
            per_group = self._embed_groups_pooled(
                process_workers, groups, encodeds, n_cols_all
            )
        else:

            def run_group(group: list[int]) -> list[TableEmbeddings]:
                return self._forward_group(
                    [encodeds[i] for i in group],
                    [n_cols_all[i] for i in group],
                )

            if workers and workers > 1 and len(groups) > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    per_group = list(pool.map(run_group, groups))
            else:
                per_group = [run_group(group) for group in groups]
        for group, group_results in zip(groups, per_group):
            for index, result in zip(group, group_results):
                results[index] = result
        return results  # type: ignore[return-value]

    def table_embeddings(self, sketches: list[TableSketch]) -> np.ndarray:
        """Stacked pooler embeddings, shape ``(n_tables, dim)``."""
        if not sketches:
            return np.zeros((0, self.dim))
        return np.stack([r.table for r in self.embed_corpus(sketches)])
