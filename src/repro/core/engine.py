"""Batched ``EmbeddingEngine``: one trunk forward per batch of tables.

The per-table embedding path (`TableEmbedder`) historically paid two to
three forwards per table — one for the column embeddings, one for the
pooler/table embedding, and possibly one more as an over-budget fallback —
each padded to the global ``max_seq_len``. For lake-scale offline indexing
(the deployment recipe of §V) that is the throughput bottleneck: Starmie and
friends treat batched offline encoding as *the* lever for indexing a lake.

This engine restructures the path around three ideas:

1. **One shared forward per batch.** ``model.embed_inputs`` →
   ``model.encoder`` runs once per batch; the pooler output (table
   embeddings) and the first-last-avg hidden states (column embeddings) are
   both read off that single invocation, so the per-table double forward is
   gone — and the over-budget fallback (a column beyond the sequence budget
   falls back to the table embedding) is free batch-wide, because the pooled
   vector is already in hand.
2. **Dynamic padding.** Inputs are finalized at their natural length and
   padded to the *batch* max instead of ``max_seq_len`` (attention is
   O(S²); short tables stop paying full-sequence cost). Padded positions are
   masked out of attention, so results match the fixed-width path to
   floating-point noise.
3. **Length bucketing.** ``embed_corpus`` sorts tables by encoded length
   before chunking, so each batch is near-uniform and wastes minimal
   padding; results are returned in the caller's order regardless.
4. **Fused inference kernels.** Every forward here runs under ``no_grad``,
   which (with ``$REPRO_NN_LAZY`` on, the default) puts the trunk in the
   lazy, fusing evaluation mode of :mod:`repro.nn.lazy`: elementwise
   chains run as cached fused kernels keyed by shape bucket — the same
   buckets this engine's length bucketing produces — so every forward
   after the first hits the kernel cache. ``fusion_stats`` surfaces the
   counters.

``forward_calls`` counts trunk invocations: embedding N tables at batch
size B performs exactly ``ceil(N / B)`` forwards.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.inputs import EncodedTable, InputEncoder, PairEncoding, batch_encodings
from repro.core.model import TabSketchFM
from repro.nn import lazy
from repro.nn.tensor import no_grad
from repro.sketch.pipeline import SketchConfig, TableSketch, sketch_table
from repro.table.schema import Table

DEFAULT_BATCH_SIZE = 16

_FORWARDS = obs.counter(
    "engine_forwards_total", "Trunk forward passes run by the embedding engine"
)
_FORWARD_MS = obs.histogram(
    "engine_forward_duration_ms",
    "Wall time of one trunk forward (finalize + encode + readout), milliseconds",
)
_TOKENS = obs.counter(
    "engine_tokens_total", "Real (unpadded) tokens pushed through the trunk"
)
_PADDED_WASTE = obs.counter(
    "engine_padded_tokens_total",
    "Padding tokens wasted per forward, by power-of-two batch-length bucket",
    ("bucket",),
)


@dataclass
class TableEmbeddings:
    """Both embedding views of one table, from one shared forward."""

    table: np.ndarray    # (dim,) — BERT pooler output
    columns: np.ndarray  # (n_cols, dim) — first-last-avg over column spans


def sketch_corpus(
    tables: list[Table],
    config: SketchConfig,
    hasher=None,
    workers: int | None = None,
) -> list[TableSketch]:
    """Sketch a corpus, optionally fanning out across ``workers`` threads.

    Sketching is pure read-only numpy over an immutable hash family
    (:class:`~repro.sketch.minhash.MinHasher` is stateless after
    construction), so a thread pool is safe; it overlaps the hashing of one
    table with the numpy reductions of another during bulk ingest.
    """
    hasher = hasher or config.build_hasher()
    if workers and workers > 1 and len(tables) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda t: sketch_table(t, config, hasher), tables)
            )
    return [sketch_table(t, config, hasher) for t in tables]


class EmbeddingEngine:
    """Produces table + column embeddings, one forward per batch."""

    def __init__(
        self,
        model: TabSketchFM,
        encoder: InputEncoder,
        batch_size: int = DEFAULT_BATCH_SIZE,
        bucket: bool = True,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.encoder = encoder
        self.batch_size = batch_size
        self.bucket = bucket
        #: Trunk invocations — the observable "one forward per batch" win.
        self.forward_calls = 0
        # Guards the counter when embed_corpus fans batches across threads;
        # the forward math itself is pure reads of frozen parameters (and
        # graph construction is off per-thread under no_grad).
        self._counter_lock = threading.Lock()

    @property
    def dim(self) -> int:
        return self.model.config.dim

    @property
    def fusion_stats(self) -> dict:
        """Lazy-engine fusion counters as plain ints.

        ``kernels_executed`` / ``cache_hits`` / ``cache_misses`` /
        ``fused_softmax`` / ``fused_layernorm`` / ``ops_fused`` plus the
        current cache size and whether lazy mode is enabled — the
        process-wide view from :func:`repro.nn.lazy.cache_info` (fusion is
        per-process, not per-engine).
        """
        return lazy.cache_info()

    # ------------------------------------------------------------------ #
    def _finalize(self, encoded: EncodedTable) -> PairEncoding:
        """Finalize one encoded table at its natural (clamped) length."""
        segments = np.zeros(encoded.length, dtype=np.int64)
        return self.encoder._finalize(
            encoded.token_ids,
            encoded.token_positions,
            encoded.column_positions,
            encoded.column_types,
            segments,
            encoded.minhash,
            encoded.numeric,
            target_length=encoded.length,
        )

    def _forward_group(
        self, encodeds: list[EncodedTable], n_cols: list[int]
    ) -> list[TableEmbeddings]:
        """One shared forward for a group: pooler + first-last-avg states.

        Finalization (padding) happens here, per group, so a corpus-sized
        call never holds two corpus-sized copies of the input arrays.
        """
        pad_id = self.encoder.tokenizer.vocabulary.pad_id
        with obs.span("engine.forward", tables=len(encodeds)) as forward:
            batch = batch_encodings(
                [self._finalize(encoded) for encoded in encodeds], pad_token_id=pad_id
            )
            self.model.eval()
            with no_grad():
                embedded = self.model.embed_inputs(batch)
                contextual = self.model.encoder(embedded, batch["attention_mask"])
                pooled = self.model.pool(contextual).numpy()
                first_last = ((embedded + contextual) * 0.5).numpy()
        with self._counter_lock:
            self.forward_calls += 1
        if obs.enabled():
            lengths = [encoded.length for encoded in encodeds]
            padded_len = max(lengths)
            waste = padded_len * len(lengths) - sum(lengths)
            bucket = 1 << max(0, padded_len - 1).bit_length()
            _FORWARDS.inc()
            _FORWARD_MS.observe(forward.duration_ms)
            _TOKENS.inc(sum(lengths))
            _PADDED_WASTE.labels(bucket=str(bucket)).inc(waste)

        max_len = self.encoder.config.max_seq_len
        results: list[TableEmbeddings] = []
        for i, encoded in enumerate(encodeds):
            table_vec = pooled[i].copy()
            columns = np.zeros((n_cols[i], self.dim))
            for j, span in enumerate(encoded.spans[: n_cols[i]]):
                stop = min(span.stop, max_len)
                if span.start < max_len and stop > span.start:
                    columns[j] = first_last[i, span.start : stop].mean(axis=0)
                else:
                    # Over-budget column: the pooled table embedding is the
                    # fallback, already computed in this same forward.
                    columns[j] = table_vec
            for j in range(len(encoded.spans), n_cols[i]):
                columns[j] = table_vec
            results.append(TableEmbeddings(table=table_vec, columns=columns))
        return results

    # ------------------------------------------------------------------ #
    def embed_batch(self, sketches: list[TableSketch]) -> list[TableEmbeddings]:
        """Embed up to one batch of sketches in a *single* forward pass."""
        if not sketches:
            return []
        encodeds = [self.encoder.encode_table(sketch) for sketch in sketches]
        return self._forward_group(encodeds, [s.n_cols for s in sketches])

    def embed_corpus(
        self,
        sketches: list[TableSketch],
        batch_size: int | None = None,
        workers: int | None = None,
    ) -> list[TableEmbeddings]:
        """Embed a whole corpus in ``ceil(N / batch_size)`` forwards.

        With bucketing on, tables are grouped by encoded length so each
        batch pads to a near-uniform max; output order always matches the
        input order. ``workers`` fans independent batch forwards across a
        thread pool (each batch's math touches only its own arrays, so
        results are bitwise-identical to the sequential path; the BLAS
        matmuls release the GIL, which is where the overlap comes from).
        """
        if batch_size is None:
            batch_size = self.batch_size
        elif batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not sketches:
            return []
        encodeds = [self.encoder.encode_table(sketch) for sketch in sketches]
        order = list(range(len(sketches)))
        if self.bucket:
            order.sort(key=lambda i: encodeds[i].length)
        groups = [
            order[start : start + batch_size]
            for start in range(0, len(order), batch_size)
        ]

        def run_group(group: list[int]) -> list[TableEmbeddings]:
            return self._forward_group(
                [encodeds[i] for i in group],
                [sketches[i].n_cols for i in group],
            )

        results: list[TableEmbeddings | None] = [None] * len(sketches)
        if workers and workers > 1 and len(groups) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                per_group = list(pool.map(run_group, groups))
        else:
            per_group = [run_group(group) for group in groups]
        for group, group_results in zip(groups, per_group):
            for index, result in zip(group, group_results):
                results[index] = result
        return results  # type: ignore[return-value]

    def table_embeddings(self, sketches: list[TableSketch]) -> np.ndarray:
        """Stacked pooler embeddings, shape ``(n_tables, dim)``."""
        if not sketches:
            return np.zeros((0, self.dim))
        return np.stack([r.table for r in self.embed_corpus(sketches)])
