"""MLM pre-training (§III-C, Figs. 2a and 3).

Masking protocol, following the paper exactly:

- **Whole-column masking**: for each example one column is chosen and *all*
  tokens of its name are replaced by ``[MASK]`` (the tabular analogue of
  whole-word masking).
- Small tables (≤ 5 columns) yield one example per column; larger tables
  yield 5 examples with randomly chosen columns, to avoid over-representing
  wide tables.
- Description tokens are additionally masked i.i.d. with the MLM
  probability (default 0.15).
- **Augmentation**: extra copies of each table with shuffled column order
  (the content snapshot stays identical because rows don't change, but
  column positions — and therefore the learning signal — do).

Loss: cross-entropy over masked positions only (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.inputs import EncodedTable, InputEncoder, PairEncoding, batch_encodings
from repro.core.model import TabSketchFM
from repro.nn.losses import cross_entropy_loss
from repro.nn.optim import Adam, GradClipper
from repro.nn.tensor import no_grad
from repro.table.schema import Table
from repro.table.transform import shuffle_columns
from repro.utils.rng import spawn_rng

IGNORE_INDEX = -100


@dataclass
class MaskedExample:
    """One MLM training example: inputs plus per-position labels."""

    encoding: PairEncoding
    labels: np.ndarray  # int64[S]; IGNORE_INDEX on unmasked positions


@dataclass
class PretrainConfig:
    """Pre-training loop hyper-parameters (scaled-down from the paper)."""

    epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 3e-4
    #: Early-stopping patience in epochs, as in the paper ("patience of 5").
    patience: int = 5
    mlm_probability: float = 0.15
    max_masked_columns: int = 5
    #: Extra column-shuffled copies per table (§III-C data augmentation).
    augmentation_copies: int = 1
    grad_clip: float = 1.0
    #: Keep the best-validation-loss weights (standard early stopping).
    restore_best: bool = True
    seed: int = 0


def augment_tables(
    tables: list[Table], copies: int, seed: int = 0
) -> list[Table]:
    """Original tables plus ``copies`` column-shuffled variants of each."""
    rng = spawn_rng(seed, "pretrain-augment")
    out = list(tables)
    for table in tables:
        for copy_index in range(copies):
            out.append(
                shuffle_columns(table, rng, name=f"{table.name}__shuf{copy_index}")
            )
    return out


def make_masked_examples(
    encoded: EncodedTable,
    encoder: InputEncoder,
    rng: np.random.Generator,
    mlm_probability: float = 0.15,
    max_masked_columns: int = 5,
) -> list[MaskedExample]:
    """Whole-column masked examples for one encoded table (Fig. 3)."""
    vocab = encoder.tokenizer.vocabulary
    spans = encoded.spans
    if not spans:
        return []
    if len(spans) <= max_masked_columns:
        chosen = list(range(len(spans)))
    else:
        chosen = sorted(
            rng.choice(len(spans), size=max_masked_columns, replace=False).tolist()
        )

    desc_start, desc_stop = encoded.description_span
    examples: list[MaskedExample] = []
    for span_index in chosen:
        span = spans[span_index]
        token_ids = encoded.token_ids.copy()
        labels = np.full(encoded.length, IGNORE_INDEX, dtype=np.int64)
        labels[span.start : span.stop] = token_ids[span.start : span.stop]
        token_ids[span.start : span.stop] = vocab.mask_id
        # i.i.d. masking of description tokens (MLM probability).
        for position in range(desc_start, desc_stop):
            if rng.random() < mlm_probability:
                labels[position] = token_ids[position]
                token_ids[position] = vocab.mask_id

        segments = np.zeros(encoded.length, dtype=np.int64)
        # Natural-length encoding: each training batch pads to its own max
        # (dynamic padding) instead of the global max_seq_len.
        encoding = encoder._finalize(
            token_ids,
            encoded.token_positions,
            encoded.column_positions,
            encoded.column_types,
            segments,
            encoded.minhash,
            encoded.numeric,
            target_length=encoded.length,
        )
        usable = min(encoded.length, encoder.config.max_seq_len)
        examples.append(MaskedExample(encoding=encoding, labels=labels[:usable]))
    return examples


@dataclass
class PretrainHistory:
    """Loss trajectory of a pre-training run."""

    train_losses: list[float] = field(default_factory=list)
    valid_losses: list[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def best_valid(self) -> float:
        return min(self.valid_losses) if self.valid_losses else float("inf")


class Pretrainer:
    """Runs the MLM pre-training loop with early stopping."""

    def __init__(self, model: TabSketchFM, encoder: InputEncoder,
                 config: PretrainConfig | None = None):
        self.model = model
        self.encoder = encoder
        self.config = config or PretrainConfig()

    # ------------------------------------------------------------------ #
    def build_examples(self, encoded_tables: list[EncodedTable]) -> list[MaskedExample]:
        rng = spawn_rng(self.config.seed, "pretrain-masking")
        examples: list[MaskedExample] = []
        for encoded in encoded_tables:
            examples.extend(
                make_masked_examples(
                    encoded,
                    self.encoder,
                    rng,
                    mlm_probability=self.config.mlm_probability,
                    max_masked_columns=self.config.max_masked_columns,
                )
            )
        return examples

    def _epoch_loss(self, examples: list[MaskedExample], train: bool,
                    optimizer: Adam | None, clipper: GradClipper | None,
                    rng: np.random.Generator) -> float:
        batch_size = self.config.batch_size
        order = rng.permutation(len(examples)) if train else np.arange(len(examples))
        total, count = 0.0, 0
        pad_id = self.encoder.tokenizer.vocabulary.pad_id
        for start in range(0, len(examples), batch_size):
            chunk = [examples[i] for i in order[start : start + batch_size]]
            batch = batch_encodings(
                [ex.encoding for ex in chunk], pad_token_id=pad_id
            )
            seq = batch["token_ids"].shape[1]
            labels = np.full((len(chunk), seq), IGNORE_INDEX, dtype=np.int64)
            for row, ex in enumerate(chunk):
                labels[row, : ex.labels.shape[0]] = ex.labels
            if train:
                self.model.train()
                optimizer.zero_grad()
                hidden = self.model(batch)
                loss = cross_entropy_loss(
                    self.model.mlm_logits(hidden), labels, ignore_index=IGNORE_INDEX
                )
                loss.backward()
                clipper.clip()
                optimizer.step()
                value = loss.item()
            else:
                self.model.eval()
                with no_grad():
                    hidden = self.model(batch)
                    value = cross_entropy_loss(
                        self.model.mlm_logits(hidden), labels,
                        ignore_index=IGNORE_INDEX,
                    ).item()
            total += value * len(chunk)
            count += len(chunk)
        return total / max(1, count)

    def train(
        self,
        train_examples: list[MaskedExample],
        valid_examples: list[MaskedExample],
    ) -> PretrainHistory:
        """Optimize the MLM objective with early stopping on validation loss."""
        config = self.config
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        clipper = GradClipper(self.model.parameters(), max_norm=config.grad_clip)
        rng = spawn_rng(config.seed, "pretrain-shuffle")
        history = PretrainHistory()
        best = float("inf")
        best_state = None
        since_best = 0
        for _ in range(config.epochs):
            train_loss = self._epoch_loss(train_examples, True, optimizer, clipper, rng)
            valid_loss = (
                self._epoch_loss(valid_examples, False, None, None, rng)
                if valid_examples
                else train_loss
            )
            history.train_losses.append(train_loss)
            history.valid_losses.append(valid_loss)
            if valid_loss < best - 1e-6:
                best = valid_loss
                since_best = 0
                if config.restore_best:
                    best_state = self.model.state_dict()
            else:
                since_best += 1
                if since_best >= config.patience:
                    history.stopped_early = True
                    break
        if config.restore_best and best_state is not None:
            self.model.load_state_dict(best_state)
        return history
