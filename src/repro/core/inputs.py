"""Input encoding: from sketches to aligned model-input arrays (Fig. 1).

The paper builds one "input string" per table::

    [CLS] <table description> [SEP] <col 1 name> [SEP] <col 2 name> [SEP] ...

and aligns six parallel signals with its tokens:

1. token ids (WordPiece);
2. *within-column* token positions (re-purposed positional embedding);
3. column positions (0 = description, then 1..C);
4. column types (string/int/float/date as 1..4; 0 elsewhere);
5. per-position MinHash vectors — the content snapshot for description
   positions, E_C or E_{C||W} for column-name positions;
6. per-position numerical-sketch vectors (zero for description positions).

A :class:`PairEncoding` concatenates two encoded tables for the cross-encoder
(Fig. 2b) with BERT-style segment ids 0/1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import TabSketchFMConfig
from repro.sketch.numeric import NUMERICAL_SKETCH_DIM
from repro.sketch.pipeline import TableSketch
from repro.text.tokenizer import WordPieceTokenizer


@dataclass
class ColumnSpan:
    """Token index range [start, stop) of one column's name tokens."""

    column_index: int
    start: int
    stop: int


@dataclass
class EncodedTable:
    """All aligned input arrays for a single table (unpadded)."""

    token_ids: np.ndarray       # int64[S]
    token_positions: np.ndarray  # int64[S] — position *within* the column name
    column_positions: np.ndarray  # int64[S] — 0 for description, 1..C
    column_types: np.ndarray    # int64[S] — ColumnType value or 0
    minhash: np.ndarray         # float64[S, 2*num_perm]
    numeric: np.ndarray         # float64[S, NUMERICAL_SKETCH_DIM]
    spans: list[ColumnSpan]     # column-name token spans (for masking/pooling)
    description_span: tuple[int, int]  # [start, stop) of description tokens

    @property
    def length(self) -> int:
        return int(self.token_ids.shape[0])


@dataclass
class PairEncoding:
    """A cross-encoder input: two tables concatenated with segment ids.

    ``interaction`` holds the cross-table sketch agreement features injected
    at the [CLS] position (zeros for single-table encodings); see
    :mod:`repro.sketch.interactions` for the scale-down rationale.
    """

    token_ids: np.ndarray
    token_positions: np.ndarray
    column_positions: np.ndarray
    column_types: np.ndarray
    segment_ids: np.ndarray
    minhash: np.ndarray
    numeric: np.ndarray
    attention_mask: np.ndarray
    interaction: np.ndarray

    @property
    def length(self) -> int:
        return int(self.token_ids.shape[0])


class InputEncoder:
    """Encodes :class:`TableSketch` objects for a fixed tokenizer/config."""

    def __init__(self, config: TabSketchFMConfig, tokenizer: WordPieceTokenizer):
        self.config = config
        self.tokenizer = tokenizer
        if len(tokenizer.vocabulary) > config.vocab_size:
            raise ValueError(
                f"tokenizer vocab {len(tokenizer.vocabulary)} exceeds "
                f"config.vocab_size {config.vocab_size}"
            )

    # ------------------------------------------------------------------ #
    def encode_table(self, sketch: TableSketch) -> EncodedTable:
        """Build the unpadded aligned arrays for one table."""
        config = self.config
        vocab = self.tokenizer.vocabulary
        mh_dim = config.minhash_input_dim

        token_ids: list[int] = [vocab.cls_id]
        token_positions: list[int] = [0]
        column_positions: list[int] = [0]
        column_types: list[int] = [0]
        minhash_rows: list[np.ndarray] = []
        numeric_rows: list[np.ndarray] = []

        snapshot_vec = (
            sketch.snapshot_vector()
            if config.selection.use_snapshot
            else np.zeros(mh_dim)
        )
        zero_numeric = np.zeros(NUMERICAL_SKETCH_DIM)
        minhash_rows.append(snapshot_vec)
        numeric_rows.append(zero_numeric)

        desc_start = len(token_ids)
        for piece_id in self.tokenizer.encode(sketch.description):
            token_ids.append(piece_id)
            token_positions.append(
                min(len(token_ids) - 1 - desc_start, config.max_token_positions - 1)
            )
            column_positions.append(0)
            column_types.append(0)
            minhash_rows.append(snapshot_vec)
            numeric_rows.append(zero_numeric)
        desc_stop = len(token_ids)

        def add_separator() -> None:
            token_ids.append(vocab.sep_id)
            token_positions.append(0)
            column_positions.append(0)
            column_types.append(0)
            minhash_rows.append(snapshot_vec)
            numeric_rows.append(zero_numeric)

        add_separator()

        spans: list[ColumnSpan] = []
        max_cols = config.max_columns
        for col_index, col in enumerate(sketch.column_sketches[: max_cols - 1]):
            col_position = col_index + 1
            col_minhash = (
                col.minhash_vector(config.sketch.num_perm)
                if config.selection.use_minhash
                else np.zeros(mh_dim)
            )
            col_numeric = (
                col.numeric.to_vector()
                if config.selection.use_numeric
                else zero_numeric
            )
            pieces = self.tokenizer.encode(col.name) or [vocab.unk_id]
            start = len(token_ids)
            for within, piece_id in enumerate(pieces):
                token_ids.append(piece_id)
                token_positions.append(min(within, config.max_token_positions - 1))
                column_positions.append(col_position)
                column_types.append(int(col.ctype))
                minhash_rows.append(col_minhash)
                numeric_rows.append(col_numeric)
            spans.append(ColumnSpan(col_index, start, len(token_ids)))
            # Separator carries the column's sketches so attention can use
            # them even for single-token names; position resets afterwards.
            token_ids.append(vocab.sep_id)
            token_positions.append(0)
            column_positions.append(col_position)
            column_types.append(int(col.ctype))
            minhash_rows.append(col_minhash)
            numeric_rows.append(col_numeric)

        return EncodedTable(
            token_ids=np.asarray(token_ids, dtype=np.int64),
            token_positions=np.asarray(token_positions, dtype=np.int64),
            column_positions=np.asarray(column_positions, dtype=np.int64),
            column_types=np.asarray(column_types, dtype=np.int64),
            minhash=np.asarray(minhash_rows, dtype=np.float64),
            numeric=np.asarray(numeric_rows, dtype=np.float64),
            spans=spans,
            description_span=(desc_start, desc_stop),
        )

    # ------------------------------------------------------------------ #
    def encode_single(self, sketch: TableSketch, pad: bool = True) -> PairEncoding:
        """A single-table input padded/truncated to ``max_seq_len``.

        With ``pad=False`` the encoding keeps its natural (truncated) length;
        :func:`batch_encodings` then pads to the batch max — the dynamic
        padding path used by :class:`repro.core.engine.EmbeddingEngine`.
        """
        encoded = self.encode_table(sketch)
        segments = np.zeros(encoded.length, dtype=np.int64)
        return self._finalize(
            encoded.token_ids,
            encoded.token_positions,
            encoded.column_positions,
            encoded.column_types,
            segments,
            encoded.minhash,
            encoded.numeric,
            target_length=None if pad else encoded.length,
        )

    def encode_pair(
        self, first: TableSketch, second: TableSketch, pad: bool = True
    ) -> PairEncoding:
        """A cross-encoder pair input: ``[CLS] A ... [SEP] B ...`` (Fig. 2b)."""
        from repro.sketch.interactions import interaction_features

        a = self.encode_table(first)
        b = self.encode_table(second)
        interaction = interaction_features(first, second, self.config.selection)
        # Drop B's leading [CLS]; keep a single CLS at position 0.
        token_ids = np.concatenate([a.token_ids, b.token_ids[1:]])
        token_positions = np.concatenate([a.token_positions, b.token_positions[1:]])
        column_positions = np.concatenate([a.column_positions, b.column_positions[1:]])
        column_types = np.concatenate([a.column_types, b.column_types[1:]])
        segments = np.concatenate(
            [np.zeros(a.length, dtype=np.int64), np.ones(b.length - 1, dtype=np.int64)]
        )
        minhash = np.concatenate([a.minhash, b.minhash[1:]])
        numeric = np.concatenate([a.numeric, b.numeric[1:]])
        return self._finalize(
            token_ids, token_positions, column_positions, column_types,
            segments, minhash, numeric, interaction=interaction,
            target_length=None if pad else len(token_ids),
        )

    # ------------------------------------------------------------------ #
    def _finalize(self, token_ids, token_positions, column_positions,
                  column_types, segments, minhash, numeric,
                  interaction: np.ndarray | None = None,
                  target_length: int | None = None) -> PairEncoding:
        """Pad/truncate the aligned arrays to ``target_length``.

        ``target_length=None`` keeps the historical fixed-width behaviour
        (pad to ``max_seq_len``); any explicit value is clamped to
        ``max_seq_len``, so callers can pass the natural sequence length and
        let :func:`batch_encodings` pad to the batch max instead of the
        global worst case (attention is O(S²) — short tables should not pay
        full-sequence cost).
        """
        from repro.sketch.interactions import INTERACTION_DIM
        config = self.config
        pad_id = self.tokenizer.vocabulary.pad_id
        seq = config.max_seq_len
        if target_length is not None:
            seq = max(1, min(int(target_length), seq))
        length = min(len(token_ids), seq)

        def pad_ints(arr: np.ndarray, fill: int = 0) -> np.ndarray:
            out = np.full(seq, fill, dtype=np.int64)
            out[:length] = arr[:length]
            return out

        def pad_floats(arr: np.ndarray) -> np.ndarray:
            out = np.zeros((seq, arr.shape[1]), dtype=np.float64)
            out[:length] = arr[:length]
            return out

        mask = np.zeros(seq, dtype=np.float64)
        mask[:length] = 1.0
        if interaction is None:
            interaction = np.zeros(INTERACTION_DIM, dtype=np.float64)
        return PairEncoding(
            token_ids=pad_ints(token_ids, pad_id),
            token_positions=pad_ints(token_positions),
            column_positions=pad_ints(column_positions),
            column_types=pad_ints(column_types),
            segment_ids=pad_ints(segments),
            minhash=pad_floats(minhash),
            numeric=pad_floats(numeric),
            attention_mask=mask,
            interaction=np.asarray(interaction, dtype=np.float64),
        )


def batch_encodings(
    encodings: list[PairEncoding],
    target_length: int | None = None,
    pad_token_id: int = 0,
) -> dict[str, np.ndarray]:
    """Stack encodings into batched arrays, padding ragged ones to the max.

    Equal-length inputs (the historical contract) are stacked directly.
    Ragged inputs — encodings finalized at their natural length — are padded
    to ``target_length`` (default: the batch max): integer signals get
    ``pad_token_id``/0, float signals get zeros, and the attention mask is
    extended with zeros so padded positions stay invisible to attention.
    """
    lengths = [e.length for e in encodings]
    target = max(lengths) if target_length is None else int(target_length)
    if target < max(lengths):
        raise ValueError(
            f"target_length {target} shorter than longest encoding {max(lengths)}"
        )
    if all(length == target for length in lengths):
        return {
            "token_ids": np.stack([e.token_ids for e in encodings]),
            "token_positions": np.stack([e.token_positions for e in encodings]),
            "column_positions": np.stack([e.column_positions for e in encodings]),
            "column_types": np.stack([e.column_types for e in encodings]),
            "segment_ids": np.stack([e.segment_ids for e in encodings]),
            "minhash": np.stack([e.minhash for e in encodings]),
            "numeric": np.stack([e.numeric for e in encodings]),
            "attention_mask": np.stack([e.attention_mask for e in encodings]),
            "interaction": np.stack([e.interaction for e in encodings]),
        }

    n = len(encodings)

    def pad_ints(field: str, fill: int = 0) -> np.ndarray:
        out = np.full((n, target), fill, dtype=np.int64)
        for i, e in enumerate(encodings):
            out[i, : e.length] = getattr(e, field)
        return out

    def pad_floats(field: str) -> np.ndarray:
        width = getattr(encodings[0], field).shape[1]
        out = np.zeros((n, target, width), dtype=np.float64)
        for i, e in enumerate(encodings):
            out[i, : e.length] = getattr(e, field)
        return out

    mask = np.zeros((n, target), dtype=np.float64)
    for i, e in enumerate(encodings):
        mask[i, : e.length] = e.attention_mask
    return {
        "token_ids": pad_ints("token_ids", pad_token_id),
        "token_positions": pad_ints("token_positions"),
        "column_positions": pad_ints("column_positions"),
        "column_types": pad_ints("column_types"),
        "segment_ids": pad_ints("segment_ids"),
        "minhash": pad_floats("minhash"),
        "numeric": pad_floats("numeric"),
        "attention_mask": mask,
        "interaction": np.stack([e.interaction for e in encodings]),
    }
