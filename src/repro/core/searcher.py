"""Search adapters: TabSketchFM (±SBERT) and fine-tuned baselines as
retrieval systems over the benchmarks of §IV-C.

- :class:`TabSketchFMSearcher` indexes column embeddings from a (fine-tuned)
  trunk and follows the paper's retrieval recipes: closest-column ranking for
  join queries, the Fig. 6 NEARTABLES/RANK1/RANK2 procedure for union and
  subset queries. With ``sbert=...`` it concatenates normalized frozen value
  embeddings per column (the TabSketchFM-SBERT variant).
- :class:`DualEncoderSearcher` plays the TaBERT-FT / TUTA-FT roles: frozen
  embeddings from a fine-tuned dual-encoder trunk. TUTA exposes only
  table-level embeddings ("we could not include TUTA [for join] as it does
  not provide column embeddings") — mirrored by ``table_level=True``.
"""

from __future__ import annotations

import numpy as np

from repro.core.embed import TableEmbedder, finalize_column_vectors
from repro.lakebench.base import SearchQuery
from repro.search.backend import IndexSpec, make_index
from repro.search.tables import TableSearcher
from repro.sketch.pipeline import TableSketch
from repro.table.schema import Table
from repro.text.sbert import HashedSentenceEncoder


class TabSketchFMSearcher:
    """Column-embedding search with the paper's ranking procedures."""

    def __init__(
        self,
        embedder: TableEmbedder,
        tables: dict[str, Table],
        sketches: dict[str, TableSketch],
        sbert: HashedSentenceEncoder | None = None,
        name: str | None = None,
        precomputed: dict[str, list[tuple[str, np.ndarray]]] | None = None,
        index_backend: IndexSpec | str | None = None,
    ):
        """Index ``sketches`` for retrieval.

        ``index_backend`` picks the vector-index backend behind the Fig. 6
        ranking (``"exact"`` default, ``"hnsw"`` for approximate search at
        lake scale) — retrieval code is identical either way.

        The corpus build is batched: every sketch without precomputed
        vectors goes through one
        :meth:`repro.core.engine.EmbeddingEngine.embed_corpus` call —
        ``ceil(N / batch_size)`` trunk forwards instead of one (or more)
        per table.

        With ``precomputed`` (table -> ordered ``(column, vector)`` list, as
        produced by a warm :class:`repro.lake.store.LakeStore`), the given
        vectors are indexed as-is and the trunk is never run — the offline
        index / online query split the paper recommends for deployment.
        """
        self.embedder = embedder
        # Defensive copies: incremental add/remove must never mutate the
        # caller's corpus dicts.
        self.tables = dict(tables)
        self.sketches = dict(sketches)
        self.sbert = sbert
        self.name = name or ("TabSketchFM-SBERT" if sbert else "TabSketchFM")
        dim = embedder.dim + (sbert.dim if sbert else 0)
        self.searcher = TableSearcher(dim, backend=index_backend)
        self._column_vectors: dict[tuple[str, str], np.ndarray] = {}
        fresh = [
            table_name
            for table_name in self.sketches
            if precomputed is None or table_name not in precomputed
        ]
        embedded = (
            embedder.engine.embed_corpus([self.sketches[n] for n in fresh])
            if fresh
            else []
        )
        columns_by_name = {
            name_: result.columns for name_, result in zip(fresh, embedded)
        }
        for table_name, sketch in self.sketches.items():
            if table_name in columns_by_name:
                vectors = self._finalize_vectors(
                    table_name, sketch, columns_by_name[table_name]
                )
            else:
                vectors = precomputed[table_name]
            self._index_vectors(table_name, vectors)

    # ------------------------------------------------------------------ #
    def _index_vectors(
        self, table_name: str, vectors: list[tuple[str, np.ndarray]]
    ) -> None:
        self.searcher.add_table(
            table_name,
            [column_name for column_name, _ in vectors],
            [vector for _, vector in vectors],
        )
        for column_name, vector in vectors:
            self._column_vectors[(table_name, column_name)] = np.asarray(
                vector, dtype=np.float64
            )

    def add_table(
        self,
        table_name: str,
        table: Table | None,
        sketch: TableSketch,
        vectors: list[tuple[str, np.ndarray]] | None = None,
    ) -> None:
        """Incrementally (re-)index one table, embedding it unless
        ``vectors`` are supplied; no other table is touched.

        Vectors are computed *before* any removal so a replace-in-place
        either succeeds or leaves the old entry intact.
        """
        if table is not None:
            self.tables[table_name] = table
        if vectors is None:
            vectors = self._table_column_vectors(table_name, sketch)
        if table_name in self.sketches or self.searcher.has_table(table_name):
            kept_table = self.tables.get(table_name)
            self.remove_table(table_name)
            if kept_table is not None:
                self.tables[table_name] = kept_table
        self.sketches[table_name] = sketch
        self._index_vectors(table_name, vectors)

    def remove_table(self, table_name: str) -> None:
        """Incrementally drop one table from the index."""
        sketch = self.sketches.pop(table_name, None)
        self.tables.pop(table_name, None)
        if sketch is not None:
            for column_sketch in sketch.column_sketches:
                self._column_vectors.pop((table_name, column_sketch.name), None)
        self.searcher.remove_table(table_name)

    # ------------------------------------------------------------------ #
    def _finalize_vectors(
        self, table_name: str, sketch: TableSketch, embeddings: np.ndarray
    ) -> list[tuple[str, np.ndarray]]:
        """Attach the optional SBERT value half to trunk column embeddings."""
        # Raw cell values are only needed for the SBERT half; sketch-only
        # indexing works without the Table object (e.g. warm-store paths).
        table = self.tables.get(table_name) if self.sbert is not None else None
        if self.sbert is not None and table is None:
            raise ValueError(
                f"table {table_name!r} has no Table object but sbert is "
                "enabled; the SBERT half needs raw cell values — pass "
                "`table=` (or precomputed `vectors=`) when indexing"
            )
        return finalize_column_vectors(
            embeddings, sketch, sbert=self.sbert, table=table
        )

    def _table_column_vectors(
        self, table_name: str, sketch: TableSketch
    ) -> list[tuple[str, np.ndarray]]:
        return self._finalize_vectors(
            table_name, sketch, self.embedder.column_embeddings(sketch)
        )

    def _query_vectors(self, query: SearchQuery) -> np.ndarray:
        sketch = self.sketches[query.table]
        if query.column is not None:
            return self._column_vectors[(query.table, query.column)][None, :]
        return np.stack(
            [
                self._column_vectors[(query.table, cs.name)]
                for cs in sketch.column_sketches
            ]
        )

    def retrieve(self, query: SearchQuery, k: int) -> list[str]:
        vectors = self._query_vectors(query)
        if query.column is not None:
            return self.searcher.search_by_column(
                vectors[0], k, exclude_table=query.table
            )
        return self.searcher.search_tables(vectors, k, exclude_table=query.table)


class DualEncoderSearcher:
    """TaBERT-FT / TUTA-FT style search over fine-tuned trunk embeddings."""

    def __init__(self, trainer, tables: dict[str, Table], name: str,
                 table_level: bool = False,
                 index_backend: IndexSpec | str | None = None):
        # ``trainer`` is a DualEncoderTrainer whose model has been fitted.
        self.trainer = trainer
        self.tables = tables
        self.name = name
        self.table_level = table_level
        dim = trainer.model.trunk.dim
        if table_level:
            self.table_index = make_index(index_backend, dim)
            #: Memoized per-table query embeddings — the corpus build already
            #: paid for every member table, and `retrieve` must not recompute
            #: the same frozen embedding on every call.
            self._table_vectors: dict[str, np.ndarray] = {}
            for table_name, table in tables.items():
                vector = trainer.table_embedding(table)
                self._table_vectors[table_name] = vector
                self.table_index.add(table_name, vector)
        else:
            self.searcher = TableSearcher(dim, backend=index_backend)
            self._column_vectors: dict[tuple[str, str], np.ndarray] = {}
            for table_name, table in tables.items():
                for column in table.columns:
                    vector = trainer.column_embedding(table, column.name)
                    self.searcher.add_column(table_name, column.name, vector)
                    self._column_vectors[(table_name, column.name)] = vector

    def retrieve(self, query: SearchQuery, k: int) -> list[str]:
        if self.table_level:
            vector = self._table_vectors.get(query.table)
            if vector is None:
                vector = self.trainer.table_embedding(self.tables[query.table])
                self._table_vectors[query.table] = vector
            hits = self.table_index.query(vector, k + 1)
            return [key for key, _ in hits if key != query.table][:k]
        if query.column is not None:
            vector = self._column_vectors[(query.table, query.column)]
            return self.searcher.search_by_column(vector, k, exclude_table=query.table)
        table = self.tables[query.table]
        vectors = np.stack(
            [self._column_vectors[(query.table, c.name)] for c in table.columns]
        )
        return self.searcher.search_tables(vectors, k, exclude_table=query.table)
