"""Search adapters: TabSketchFM (±SBERT) and fine-tuned baselines as
retrieval systems over the benchmarks of §IV-C.

- :class:`TabSketchFMSearcher` indexes column embeddings from a (fine-tuned)
  trunk and follows the paper's retrieval recipes: closest-column ranking for
  join queries, the Fig. 6 NEARTABLES/RANK1/RANK2 procedure for union and
  subset queries. With ``sbert=...`` it concatenates normalized frozen value
  embeddings per column (the TabSketchFM-SBERT variant).
- :class:`DualEncoderSearcher` plays the TaBERT-FT / TUTA-FT roles: frozen
  embeddings from a fine-tuned dual-encoder trunk. TUTA exposes only
  table-level embeddings ("we could not include TUTA [for join] as it does
  not provide column embeddings") — mirrored by ``table_level=True``.
"""

from __future__ import annotations

import numpy as np

from repro.core.embed import TableEmbedder, concat_normalized
from repro.lakebench.base import SearchQuery
from repro.search.index import KnnIndex
from repro.search.tables import TableSearcher
from repro.sketch.pipeline import TableSketch
from repro.table.schema import Table
from repro.text.sbert import HashedSentenceEncoder


class TabSketchFMSearcher:
    """Column-embedding search with the paper's ranking procedures."""

    def __init__(
        self,
        embedder: TableEmbedder,
        tables: dict[str, Table],
        sketches: dict[str, TableSketch],
        sbert: HashedSentenceEncoder | None = None,
        name: str | None = None,
    ):
        self.embedder = embedder
        self.tables = tables
        self.sketches = sketches
        self.sbert = sbert
        self.name = name or ("TabSketchFM-SBERT" if sbert else "TabSketchFM")
        dim = embedder.dim + (sbert.dim if sbert else 0)
        self.searcher = TableSearcher(dim)
        self._column_vectors: dict[tuple[str, str], np.ndarray] = {}
        for table_name, sketch in sketches.items():
            vectors = self._table_column_vectors(table_name, sketch)
            for column_name, vector in vectors:
                self.searcher.add_column(table_name, column_name, vector)
                self._column_vectors[(table_name, column_name)] = vector

    # ------------------------------------------------------------------ #
    def _table_column_vectors(
        self, table_name: str, sketch: TableSketch
    ) -> list[tuple[str, np.ndarray]]:
        embeddings = self.embedder.column_embeddings(sketch)
        out: list[tuple[str, np.ndarray]] = []
        table = self.tables[table_name]
        for index, column_sketch in enumerate(sketch.column_sketches):
            vector = embeddings[index]
            if self.sbert is not None:
                value_vec = self.sbert.encode_column(table.column(column_sketch.name))
                vector = concat_normalized(vector, value_vec)
            out.append((column_sketch.name, vector))
        return out

    def _query_vectors(self, query: SearchQuery) -> np.ndarray:
        sketch = self.sketches[query.table]
        if query.column is not None:
            return self._column_vectors[(query.table, query.column)][None, :]
        return np.stack(
            [
                self._column_vectors[(query.table, cs.name)]
                for cs in sketch.column_sketches
            ]
        )

    def retrieve(self, query: SearchQuery, k: int) -> list[str]:
        vectors = self._query_vectors(query)
        if query.column is not None:
            return self.searcher.search_by_column(
                vectors[0], k, exclude_table=query.table
            )
        return self.searcher.search_tables(vectors, k, exclude_table=query.table)


class DualEncoderSearcher:
    """TaBERT-FT / TUTA-FT style search over fine-tuned trunk embeddings."""

    def __init__(self, trainer, tables: dict[str, Table], name: str,
                 table_level: bool = False):
        # ``trainer`` is a DualEncoderTrainer whose model has been fitted.
        self.trainer = trainer
        self.tables = tables
        self.name = name
        self.table_level = table_level
        dim = trainer.model.trunk.dim
        if table_level:
            self.table_index = KnnIndex(dim)
            for table_name, table in tables.items():
                self.table_index.add(table_name, trainer.table_embedding(table))
        else:
            self.searcher = TableSearcher(dim)
            self._column_vectors: dict[tuple[str, str], np.ndarray] = {}
            for table_name, table in tables.items():
                for column in table.columns:
                    vector = trainer.column_embedding(table, column.name)
                    self.searcher.add_column(table_name, column.name, vector)
                    self._column_vectors[(table_name, column.name)] = vector

    def retrieve(self, query: SearchQuery, k: int) -> list[str]:
        if self.table_level:
            table = self.tables[query.table]
            vector = self.trainer.table_embedding(table)
            hits = self.table_index.query(vector, k + 1)
            return [key for key, _ in hits if key != query.table][:k]
        if query.column is not None:
            vector = self._column_vectors[(query.table, query.column)]
            return self.searcher.search_by_column(vector, k, exclude_table=query.table)
        table = self.tables[query.table]
        vectors = np.stack(
            [self._column_vectors[(query.table, c.name)] for c in table.columns]
        )
        return self.searcher.search_tables(vectors, k, exclude_table=query.table)
