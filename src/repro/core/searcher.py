"""Search adapters: TabSketchFM (±SBERT) and fine-tuned baselines as
retrieval systems over the benchmarks of §IV-C.

- :class:`TabSketchFMSearcher` indexes column embeddings from a (fine-tuned)
  trunk and follows the paper's retrieval recipes: closest-column ranking for
  join queries, the Fig. 6 NEARTABLES/RANK1/RANK2 procedure for union and
  subset queries. With ``sbert=...`` it concatenates normalized frozen value
  embeddings per column (the TabSketchFM-SBERT variant).
- :class:`DualEncoderSearcher` plays the TaBERT-FT / TUTA-FT roles: frozen
  embeddings from a fine-tuned dual-encoder trunk. TUTA exposes only
  table-level embeddings ("we could not include TUTA [for join] as it does
  not provide column embeddings") — mirrored by ``table_level=True``.
"""

from __future__ import annotations

import numpy as np

from repro.core.embed import TableEmbedder, concat_normalized
from repro.lakebench.base import SearchQuery
from repro.search.index import KnnIndex
from repro.search.tables import TableSearcher
from repro.sketch.pipeline import TableSketch
from repro.table.schema import Table
from repro.text.sbert import HashedSentenceEncoder


class TabSketchFMSearcher:
    """Column-embedding search with the paper's ranking procedures."""

    def __init__(
        self,
        embedder: TableEmbedder,
        tables: dict[str, Table],
        sketches: dict[str, TableSketch],
        sbert: HashedSentenceEncoder | None = None,
        name: str | None = None,
        precomputed: dict[str, list[tuple[str, np.ndarray]]] | None = None,
    ):
        """Index ``sketches`` for retrieval.

        With ``precomputed`` (table -> ordered ``(column, vector)`` list, as
        produced by a warm :class:`repro.lake.store.LakeStore`), the given
        vectors are indexed as-is and the trunk is never run — the offline
        index / online query split the paper recommends for deployment.
        """
        self.embedder = embedder
        # Defensive copies: incremental add/remove must never mutate the
        # caller's corpus dicts.
        self.tables = dict(tables)
        self.sketches = dict(sketches)
        self.sbert = sbert
        self.name = name or ("TabSketchFM-SBERT" if sbert else "TabSketchFM")
        dim = embedder.dim + (sbert.dim if sbert else 0)
        self.searcher = TableSearcher(dim)
        self._column_vectors: dict[tuple[str, str], np.ndarray] = {}
        for table_name, sketch in self.sketches.items():
            if precomputed is not None and table_name in precomputed:
                vectors = precomputed[table_name]
            else:
                vectors = self._table_column_vectors(table_name, sketch)
            self._index_vectors(table_name, vectors)

    # ------------------------------------------------------------------ #
    def _index_vectors(
        self, table_name: str, vectors: list[tuple[str, np.ndarray]]
    ) -> None:
        self.searcher.add_table(
            table_name,
            [column_name for column_name, _ in vectors],
            [vector for _, vector in vectors],
        )
        for column_name, vector in vectors:
            self._column_vectors[(table_name, column_name)] = np.asarray(
                vector, dtype=np.float64
            )

    def add_table(
        self,
        table_name: str,
        table: Table | None,
        sketch: TableSketch,
        vectors: list[tuple[str, np.ndarray]] | None = None,
    ) -> None:
        """Incrementally (re-)index one table, embedding it unless
        ``vectors`` are supplied; no other table is touched.

        Vectors are computed *before* any removal so a replace-in-place
        either succeeds or leaves the old entry intact.
        """
        if table is not None:
            self.tables[table_name] = table
        if vectors is None:
            vectors = self._table_column_vectors(table_name, sketch)
        if table_name in self.sketches or self.searcher.has_table(table_name):
            kept_table = self.tables.get(table_name)
            self.remove_table(table_name)
            if kept_table is not None:
                self.tables[table_name] = kept_table
        self.sketches[table_name] = sketch
        self._index_vectors(table_name, vectors)

    def remove_table(self, table_name: str) -> None:
        """Incrementally drop one table from the index."""
        sketch = self.sketches.pop(table_name, None)
        self.tables.pop(table_name, None)
        if sketch is not None:
            for column_sketch in sketch.column_sketches:
                self._column_vectors.pop((table_name, column_sketch.name), None)
        self.searcher.remove_table(table_name)

    # ------------------------------------------------------------------ #
    def _table_column_vectors(
        self, table_name: str, sketch: TableSketch
    ) -> list[tuple[str, np.ndarray]]:
        embeddings = self.embedder.column_embeddings(sketch)
        out: list[tuple[str, np.ndarray]] = []
        # Raw cell values are only needed for the SBERT half; sketch-only
        # indexing works without the Table object (e.g. warm-store paths).
        table = self.tables[table_name] if self.sbert is not None else None
        for index, column_sketch in enumerate(sketch.column_sketches):
            vector = embeddings[index]
            if self.sbert is not None:
                value_vec = self.sbert.encode_column(table.column(column_sketch.name))
                vector = concat_normalized(vector, value_vec)
            out.append((column_sketch.name, vector))
        return out

    def _query_vectors(self, query: SearchQuery) -> np.ndarray:
        sketch = self.sketches[query.table]
        if query.column is not None:
            return self._column_vectors[(query.table, query.column)][None, :]
        return np.stack(
            [
                self._column_vectors[(query.table, cs.name)]
                for cs in sketch.column_sketches
            ]
        )

    def retrieve(self, query: SearchQuery, k: int) -> list[str]:
        vectors = self._query_vectors(query)
        if query.column is not None:
            return self.searcher.search_by_column(
                vectors[0], k, exclude_table=query.table
            )
        return self.searcher.search_tables(vectors, k, exclude_table=query.table)


class DualEncoderSearcher:
    """TaBERT-FT / TUTA-FT style search over fine-tuned trunk embeddings."""

    def __init__(self, trainer, tables: dict[str, Table], name: str,
                 table_level: bool = False):
        # ``trainer`` is a DualEncoderTrainer whose model has been fitted.
        self.trainer = trainer
        self.tables = tables
        self.name = name
        self.table_level = table_level
        dim = trainer.model.trunk.dim
        if table_level:
            self.table_index = KnnIndex(dim)
            for table_name, table in tables.items():
                self.table_index.add(table_name, trainer.table_embedding(table))
        else:
            self.searcher = TableSearcher(dim)
            self._column_vectors: dict[tuple[str, str], np.ndarray] = {}
            for table_name, table in tables.items():
                for column in table.columns:
                    vector = trainer.column_embedding(table, column.name)
                    self.searcher.add_column(table_name, column.name, vector)
                    self._column_vectors[(table_name, column.name)] = vector

    def retrieve(self, query: SearchQuery, k: int) -> list[str]:
        if self.table_level:
            table = self.tables[query.table]
            vector = self.trainer.table_embedding(table)
            hits = self.table_index.query(vector, k + 1)
            return [key for key, _ in hits if key != query.table][:k]
        if query.column is not None:
            vector = self._column_vectors[(query.table, query.column)]
            return self.searcher.search_by_column(vector, k, exclude_table=query.table)
        table = self.tables[query.table]
        vectors = np.stack(
            [self._column_vectors[(query.table, c.name)] for c in table.columns]
        )
        return self.searcher.search_tables(vectors, k, exclude_table=query.table)
