"""Cross-encoder fine-tuning for LakeBench tasks (§III-D, Fig. 2b).

"Two input tables are concatenated and passed through the pretrained
TabSketchFM. The BERT pooler output ... is passed through a dropout and a
linear layer to generate output of size N":

- binary classification → N = 2, cross-entropy loss;
- regression → N = 1, mean-squared-error loss;
- multi-label classification → N = #classes, BCE-with-logits loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.inputs import InputEncoder, PairEncoding, batch_encodings
from repro.core.model import TabSketchFM
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.losses import bce_with_logits_loss, cross_entropy_loss, mse_loss
from repro.nn.optim import Adam, GradClipper
from repro.nn.tensor import Tensor, no_grad
from repro.sketch.pipeline import TableSketch
from repro.utils.rng import spawn_rng


class TaskType(enum.Enum):
    """LakeBench task families (Table I)."""

    BINARY = "binary"
    REGRESSION = "regression"
    MULTILABEL = "multilabel"


@dataclass
class FinetuneConfig:
    """Fine-tuning loop hyper-parameters (scaled-down from the paper)."""

    epochs: int = 8
    batch_size: int = 16
    learning_rate: float = 3e-4
    patience: int = 5
    dropout: float = 0.1
    grad_clip: float = 1.0
    #: Keep the best-validation-loss weights (standard early stopping).
    restore_best: bool = True
    seed: int = 0


class CrossEncoder(Module):
    """TabSketchFM trunk + dropout + task head over the pooler output."""

    def __init__(self, trunk: TabSketchFM, task: TaskType, num_outputs: int,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__()
        expected = {TaskType.BINARY: 2, TaskType.REGRESSION: 1}
        if task in expected and num_outputs != expected[task]:
            raise ValueError(
                f"{task.value} head requires {expected[task]} outputs, got {num_outputs}"
            )
        self.trunk = trunk
        self.task = task
        self.num_outputs = num_outputs
        rng = spawn_rng(seed, "cross-encoder-head")
        self.head_dropout = Dropout(dropout, rng=rng)
        self.head = Linear(trunk.config.dim, num_outputs, rng=rng)

    def forward(self, batch: dict[str, np.ndarray]) -> Tensor:
        hidden = self.trunk(batch)
        pooled = self.trunk.pool(hidden)
        return self.head(self.head_dropout(pooled))

    def loss(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        if self.task == TaskType.BINARY:
            return cross_entropy_loss(logits, np.asarray(labels, dtype=np.int64))
        if self.task == TaskType.REGRESSION:
            return mse_loss(logits.reshape(-1), np.asarray(labels, dtype=np.float64))
        return bce_with_logits_loss(logits, np.asarray(labels, dtype=np.float64))


@dataclass
class PairExample:
    """A labelled table pair. ``label`` is an int (binary), float
    (regression) or a multi-hot float vector (multi-label)."""

    first: TableSketch
    second: TableSketch
    label: object


@dataclass
class FinetuneHistory:
    train_losses: list[float] = field(default_factory=list)
    valid_losses: list[float] = field(default_factory=list)
    stopped_early: bool = False


class Finetuner:
    """Fine-tunes a :class:`CrossEncoder` on labelled table pairs."""

    def __init__(self, model: CrossEncoder, encoder: InputEncoder,
                 config: FinetuneConfig | None = None):
        self.model = model
        self.encoder = encoder
        self.config = config or FinetuneConfig()

    # ------------------------------------------------------------------ #
    def encode_pairs(self, pairs: list[PairExample]) -> list[tuple[PairEncoding, object]]:
        # Natural-length encodings; each batch pads to its own max length
        # (dynamic padding) instead of the global max_seq_len.
        return [
            (self.encoder.encode_pair(p.first, p.second, pad=False), p.label)
            for p in pairs
        ]

    def _batch(self, encodings: list[PairEncoding]) -> dict[str, np.ndarray]:
        return batch_encodings(
            encodings, pad_token_id=self.encoder.tokenizer.vocabulary.pad_id
        )

    def _labels_array(self, labels: list[object]) -> np.ndarray:
        if self.model.task == TaskType.BINARY:
            return np.asarray(labels, dtype=np.int64)
        if self.model.task == TaskType.REGRESSION:
            return np.asarray(labels, dtype=np.float64)
        return np.stack([np.asarray(l, dtype=np.float64) for l in labels])

    def _epoch(self, data: list[tuple[PairEncoding, object]], train: bool,
               optimizer: Adam | None, clipper: GradClipper | None,
               rng: np.random.Generator) -> float:
        batch_size = self.config.batch_size
        order = rng.permutation(len(data)) if train else np.arange(len(data))
        total, count = 0.0, 0
        for start in range(0, len(data), batch_size):
            chunk = [data[i] for i in order[start : start + batch_size]]
            batch = self._batch([enc for enc, _ in chunk])
            labels = self._labels_array([label for _, label in chunk])
            if train:
                self.model.train()
                optimizer.zero_grad()
                loss = self.model.loss(self.model(batch), labels)
                loss.backward()
                clipper.clip()
                optimizer.step()
                value = loss.item()
            else:
                self.model.eval()
                with no_grad():
                    value = self.model.loss(self.model(batch), labels).item()
            total += value * len(chunk)
            count += len(chunk)
        return total / max(1, count)

    def train(self, train_pairs: list[PairExample],
              valid_pairs: list[PairExample] | None = None) -> FinetuneHistory:
        """Run the fine-tuning loop with early stopping on validation loss."""
        config = self.config
        train_data = self.encode_pairs(train_pairs)
        valid_data = self.encode_pairs(valid_pairs) if valid_pairs else []
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        clipper = GradClipper(self.model.parameters(), max_norm=config.grad_clip)
        rng = spawn_rng(config.seed, "finetune-shuffle")
        history = FinetuneHistory()
        best = float("inf")
        best_state = None
        since_best = 0
        for _ in range(config.epochs):
            train_loss = self._epoch(train_data, True, optimizer, clipper, rng)
            valid_loss = (
                self._epoch(valid_data, False, None, None, rng)
                if valid_data
                else train_loss
            )
            history.train_losses.append(train_loss)
            history.valid_losses.append(valid_loss)
            if valid_loss < best - 1e-6:
                best = valid_loss
                since_best = 0
                if config.restore_best:
                    best_state = self.model.state_dict()
            else:
                since_best += 1
                if since_best >= config.patience:
                    history.stopped_early = True
                    break
        if config.restore_best and best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    # ------------------------------------------------------------------ #
    def predict(self, pairs: list[PairExample], batch_size: int | None = None) -> np.ndarray:
        """Task-appropriate predictions.

        binary → predicted class ids; regression → predicted values;
        multi-label → per-class probabilities (sigmoid of logits).
        """
        batch_size = batch_size or self.config.batch_size
        data = self.encode_pairs(pairs)
        outputs: list[np.ndarray] = []
        self.model.eval()
        with no_grad():
            for start in range(0, len(data), batch_size):
                chunk = [enc for enc, _ in data[start : start + batch_size]]
                logits = self.model(self._batch(chunk)).numpy()
                if self.model.task == TaskType.BINARY:
                    outputs.append(np.argmax(logits, axis=-1))
                elif self.model.task == TaskType.REGRESSION:
                    outputs.append(logits.reshape(-1))
                else:
                    outputs.append(1.0 / (1.0 + np.exp(-logits)))
        return np.concatenate(outputs) if outputs else np.zeros(0)
