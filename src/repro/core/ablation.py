"""Sketch-ablation configurations for Tables III and IV."""

from __future__ import annotations

from repro.core.config import SketchSelection

#: "Using only" configurations (Table III).
ONLY_SELECTIONS: dict[str, SketchSelection] = {
    "only_minhash": SketchSelection(use_minhash=True, use_numeric=False, use_snapshot=False),
    "only_numeric": SketchSelection(use_minhash=False, use_numeric=True, use_snapshot=False),
    "only_snapshot": SketchSelection(use_minhash=False, use_numeric=False, use_snapshot=True),
}

#: "Removing only" configurations (Table IV).
REMOVE_SELECTIONS: dict[str, SketchSelection] = {
    "no_minhash": SketchSelection(use_minhash=False, use_numeric=True, use_snapshot=True),
    "no_numeric": SketchSelection(use_minhash=True, use_numeric=False, use_snapshot=True),
    "no_snapshot": SketchSelection(use_minhash=True, use_numeric=True, use_snapshot=False),
}

#: The full model (reference row of both tables).
FULL_SELECTION = SketchSelection()


def ablation_selections(mode: str) -> dict[str, SketchSelection]:
    """Ablation suites: ``mode`` is ``"only"`` (Table III), ``"remove"``
    (Table IV) or ``"all"``."""
    if mode == "only":
        return dict(ONLY_SELECTIONS)
    if mode == "remove":
        return dict(REMOVE_SELECTIONS)
    if mode == "all":
        return {**ONLY_SELECTIONS, **REMOVE_SELECTIONS, "full": FULL_SELECTION}
    raise ValueError(f"unknown ablation mode: {mode!r}")
