"""Legacy shim: offline environments without the `wheel` package cannot build
PEP-660 editable wheels; `python setup.py develop` installs the same editable
egg-link. Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
