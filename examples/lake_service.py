"""Standing-lake walkthrough: ingest once, query forever (§V deployment).

Builds a small synthetic lake, persists it with `repro.lake`, then shows the
three things the one-shot pipeline cannot do:

1. **warm restart** — reload the lake with zero re-sketching/re-embedding;
2. **incremental update** — add/remove a table without touching the rest;
3. **cheap repeated queries** — the LRU cache amortizes query embedding.

Run:  python examples/lake_service.py
"""

from __future__ import annotations

import tempfile
import time

from repro.core import InputEncoder, TabSketchFM, TabSketchFMConfig
from repro.core.embed import TableEmbedder
from repro.lake import LakeCatalog, LakeService, LakeStore, config_fingerprint
from repro.lake.bundle import load_bundle, save_bundle
from repro.sketch import SketchConfig
from repro.table.schema import Table, table_from_rows
from repro.text import WordPieceTokenizer


def make_lake_tables() -> dict[str, Table]:
    tables: dict[str, Table] = {}
    for group, topic in enumerate(["cities", "products", "movies"]):
        base = [f"{topic}_{i}" for i in range(40)]
        for member in range(4):
            name = f"{topic}_{member}"
            rows = [
                [value, str((group + 1) * i), f"tag{i % 4}"]
                for i, value in enumerate(base[: 28 + 3 * member])
            ]
            tables[name] = table_from_rows(
                name, ["entity", "count", "tag"], rows, description=f"{topic} data"
            )
    return tables


def main() -> None:
    tables = make_lake_tables()
    texts = [t.description for t in tables.values()]
    texts += [h for t in tables.values() for h in t.header]
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=600)
    config = TabSketchFMConfig(
        vocab_size=600, dim=32, num_layers=1, num_heads=2, ffn_dim=64,
        dropout=0.0, max_seq_len=96, sketch=SketchConfig(num_perm=32, seed=1),
    )
    model = TabSketchFM(config)
    embedder = TableEmbedder(model, InputEncoder(config, tokenizer))

    with tempfile.TemporaryDirectory() as root:
        # -- 1. offline ingest: sketch + embed + persist every table ---- #
        fingerprint = config_fingerprint(config, model=model)
        started = time.perf_counter()
        save_bundle(root, model, tokenizer)
        catalog = LakeCatalog(embedder, store=LakeStore(root, fingerprint))
        for table in tables.values():
            catalog.add_table(table)
        print(
            f"ingested {len(catalog)} tables in "
            f"{time.perf_counter() - started:.2f}s "
            f"(fingerprint {fingerprint})"
        )

        # -- 2. warm restart: a fresh process would do exactly this ----- #
        started = time.perf_counter()
        model2, encoder2, _ = load_bundle(root)
        warm_fp = config_fingerprint(model2.config, model=model2)
        warm = LakeCatalog.from_store(
            TableEmbedder(model2, encoder2), LakeStore.open(root, warm_fp)
        )
        service = LakeService(warm)
        print(
            f"warm restart in {time.perf_counter() - started:.2f}s, "
            f"embed_calls={warm.embed_calls} (nothing re-embedded)"
        )

        # -- 3. union query for a lake member (leave-one-out) ----------- #
        print("\nunion search for 'cities_0':")
        for rank, hit in enumerate(service.query("cities_0", mode="union", k=3), 1):
            print(f"  {rank}. {hit}")

        # -- 4. incremental update: one table in, one table out --------- #
        newcomer = tables["movies_0"].with_columns(
            tables["movies_0"].columns, name="movies_remake"
        )
        before = warm.embed_calls
        service.add_table(newcomer)
        service.remove_table("products_3")
        print(
            f"\nadded 'movies_remake', removed 'products_3' "
            f"(re-embedded {warm.embed_calls - before} table); "
            f"catalog now {len(warm)} tables"
        )

        # -- 5. repeated external queries hit the LRU cache ------------- #
        probe = tables["movies_1"].with_columns(
            tables["movies_1"].columns, name="probe"
        )
        started = time.perf_counter()
        service.query(probe, mode="subset", k=3)
        first_ms = 1000 * (time.perf_counter() - started)
        started = time.perf_counter()
        hits = service.query(probe, mode="subset", k=3)
        cached_ms = 1000 * (time.perf_counter() - started)
        print(
            f"\nexternal probe query: {first_ms:.1f}ms cold, "
            f"{cached_ms:.1f}ms cached -> {hits}"
        )
        stats = service.stats()
        print(
            f"\nservice stats: {stats['n_tables']} tables, "
            f"{stats['n_columns']} columns, cache "
            f"{stats['cache_hits']} hits / {stats['cache_misses']} misses"
        )


if __name__ == "__main__":
    main()
