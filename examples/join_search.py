"""Join search over a synthetic data lake (the §IV-C1 scenario).

Builds the Wiki Join search benchmark (entity-annotated ground truth with
polysemy traps), runs three systems on it — exact-containment Josie, the
frozen SBERT column encoder, and TabSketchFM column embeddings — and prints
a Table-V-style comparison with an F1-vs-k curve.

Run:  python examples/join_search.py
"""

from __future__ import annotations

from repro.baselines import JosieSearcher, SbertSearcher
from repro.core import InputEncoder, TabSketchFM, TabSketchFMConfig
from repro.core.embed import TableEmbedder
from repro.core.searcher import TabSketchFMSearcher
from repro.eval.experiments import format_table, sketch_cache
from repro.lakebench import make_wiki_join_search
from repro.search.metrics import evaluate_search
from repro.sketch import SketchConfig
from repro.text import WordPieceTokenizer


def main() -> None:
    benchmark = make_wiki_join_search(scale=0.4)
    stats = benchmark.stats()
    print(
        f"benchmark: {stats['n_tables']} tables, {stats['n_queries']} join "
        f"queries (relevance = entity-annotation Jaccard > 0.5)"
    )

    sketch_config = SketchConfig(num_perm=32, seed=1)
    sketches = sketch_cache(benchmark.tables, sketch_config)
    texts = [" ".join(t.header) for t in benchmark.tables.values()]
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=800)
    config = TabSketchFMConfig(
        vocab_size=800, dim=32, num_layers=1, num_heads=2, ffn_dim=64,
        dropout=0.0, max_seq_len=96, sketch=sketch_config,
    )
    model = TabSketchFM(config)
    encoder = InputEncoder(config, tokenizer)

    systems = [
        JosieSearcher(benchmark.tables),
        SbertSearcher(benchmark.tables),
        TabSketchFMSearcher(
            TableEmbedder(model, encoder), benchmark.tables, sketches
        ),
    ]
    ks = [1, 2, 5, 10]
    rows = []
    curves = {}
    for system in systems:
        result = evaluate_search(
            system.name, benchmark, system.retrieve, k=10, curve_ks=ks
        )
        rows.append(result.row())
        curves[system.name] = result.f1_curve

    print()
    print(format_table(rows, title="Join search (Table V shape)"))
    print("\nF1 vs k (Fig. 4a shape):")
    header = "  k:    " + "  ".join(f"{k:>5d}" for k in ks)
    print(header)
    for name, curve in curves.items():
        print(
            f"  {name:12s}" + "  ".join(f"{100 * curve[k]:5.1f}" for k in ks)
        )


if __name__ == "__main__":
    main()
