"""Pre-training + sketch ablations (the §III-C / Table III-IV workflow).

1. Generate a CKAN/Socrata-like pre-training lake.
2. Augment with column-shuffled copies (§III-C) and build whole-column MLM
   examples (Fig. 3): one example per masked column, capped at 5 per table.
3. Pre-train TabSketchFM and watch the MLM loss fall.
4. Fine-tune the pre-trained trunk on Wiki Jaccard under different sketch
   ablations and compare (the Tables III/IV methodology).

Run:  python examples/pretrain_and_ablation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import InputEncoder, TabSketchFM, TabSketchFMConfig
from repro.core.ablation import FULL_SELECTION, ONLY_SELECTIONS
from repro.core.finetune import (
    CrossEncoder,
    FinetuneConfig,
    Finetuner,
    PairExample,
    TaskType,
)
from repro.core.pretrain import PretrainConfig, Pretrainer, augment_tables
from repro.eval.experiments import format_table, sketch_cache
from repro.eval.metrics import r2_score
from repro.lakebench import make_pretrain_corpus, make_wiki_jaccard
from repro.sketch import SketchConfig
from repro.text import WordPieceTokenizer


def build_stack(tables, sketch_config, selection=None, seed=0):
    texts = []
    for table in tables.values():
        texts.append(table.description)
        texts.extend(table.header)
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=1200)
    config = TabSketchFMConfig(
        vocab_size=1200, dim=32, num_layers=1, num_heads=2, ffn_dim=64,
        dropout=0.0, max_seq_len=128, sketch=sketch_config,
        selection=selection or FULL_SELECTION, seed=seed,
    )
    return config, InputEncoder(config, tokenizer), TabSketchFM(config)


def main() -> None:
    sketch_config = SketchConfig(num_perm=32, seed=1)

    # 1-2. Corpus, augmentation, masking -------------------------------
    corpus = make_pretrain_corpus(n_tables=40, seed=3)
    augmented = augment_tables(corpus, copies=1, seed=0)
    print(
        f"pre-training lake: {len(corpus)} tables -> {len(augmented)} after "
        f"column-shuffle augmentation (paper: 197,254 -> 290,948)"
    )
    tables = {t.name: t for t in augmented}
    config, encoder, model = build_stack(tables, sketch_config)
    sketches = sketch_cache(tables, sketch_config)

    pretrainer = Pretrainer(
        model, encoder,
        PretrainConfig(epochs=3, batch_size=16, learning_rate=2e-3),
    )
    examples = pretrainer.build_examples(
        [encoder.encode_table(s) for s in sketches.values()]
    )
    print(
        f"whole-column MLM examples: {len(examples)} "
        f"({len(examples) / len(augmented):.1f} per table, cap 5)"
    )

    # 3. Pre-train -------------------------------------------------------
    split = int(0.9 * len(examples))
    history = pretrainer.train(examples[:split], examples[split:])
    print(
        "MLM loss per epoch: "
        + " -> ".join(f"{loss:.3f}" for loss in history.train_losses)
    )

    # 4. Ablated fine-tuning on Wiki Jaccard ------------------------------
    dataset = make_wiki_jaccard(scale=0.5)
    task_sketches = sketch_cache(dataset.tables, sketch_config)
    rows = []
    selections = {"full": FULL_SELECTION, **ONLY_SELECTIONS}
    for label, selection in selections.items():
        _, task_encoder, task_model = build_stack(
            dataset.tables, sketch_config, selection
        )
        cross = CrossEncoder(task_model, TaskType.REGRESSION, 1, dropout=0.0)
        finetuner = Finetuner(
            cross, task_encoder,
            FinetuneConfig(epochs=8, batch_size=8, learning_rate=2e-3, patience=4),
        )
        to_examples = lambda pairs: [  # noqa: E731
            PairExample(task_sketches[p.first], task_sketches[p.second], p.label)
            for p in pairs
        ]
        finetuner.train(to_examples(dataset.train), to_examples(dataset.valid))
        predictions = finetuner.predict(to_examples(dataset.test))
        labels = np.array([p.label for p in dataset.test], dtype=float)
        rows.append({"sketches": label, "wiki jaccard R2": round(r2_score(labels, predictions), 3)})

    print()
    print(format_table(rows, title="Sketch ablation on Wiki Jaccard (Table III methodology)"))


if __name__ == "__main__":
    main()
