"""Union search with the Figure-6 ranking (the §IV-C2 scenario).

Builds a SANTOS-style benchmark of unionable-table groups, fine-tunes a
TabSketchFM cross-encoder on the TUS-SANTOS binary-union task, and compares
four systems: the fine-tuned TabSketchFM column embeddings, the frozen SBERT
column encoder, the D3L five-evidence scorer, and the Starmie contrastive
encoder.

Run:  python examples/union_search.py
"""

from __future__ import annotations

from repro.baselines import D3lSearcher, SbertSearcher, StarmieSearcher
from repro.core.embed import TableEmbedder
from repro.core.finetune import (
    CrossEncoder,
    FinetuneConfig,
    Finetuner,
    PairExample,
)
from repro.core import InputEncoder, TabSketchFM, TabSketchFMConfig
from repro.core.searcher import TabSketchFMSearcher
from repro.eval.experiments import format_table, sketch_cache
from repro.lakebench import make_santos_search, make_tus_santos
from repro.search.metrics import evaluate_search
from repro.sketch import SketchConfig
from repro.text import WordPieceTokenizer

K = 5


def main() -> None:
    benchmark = make_santos_search(scale=0.4)
    print(
        f"benchmark: {len(benchmark.tables)} tables in unionable groups, "
        f"{len(benchmark.queries)} queries, k={K}"
    )

    # Fine-tune TabSketchFM on the TUS-SANTOS union task (different corpus —
    # embeddings must transfer, as in the paper's search experiments).
    dataset = make_tus_santos(scale=0.4)
    sketch_config = SketchConfig(num_perm=32, seed=1)
    train_sketches = sketch_cache(dataset.tables, sketch_config)
    texts = [" ".join(t.header) + " " + t.description for t in dataset.tables.values()]
    texts += [" ".join(t.header) for t in benchmark.tables.values()]
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=1200)
    config = TabSketchFMConfig(
        vocab_size=1200, dim=32, num_layers=1, num_heads=2, ffn_dim=64,
        dropout=0.1, max_seq_len=128, sketch=sketch_config,
    )
    encoder = InputEncoder(config, tokenizer)
    model = TabSketchFM(config)
    cross = CrossEncoder(model, dataset.task, dataset.num_outputs)
    finetuner = Finetuner(
        cross, encoder, FinetuneConfig(epochs=5, batch_size=16, learning_rate=3e-3)
    )
    pairs = [
        PairExample(train_sketches[p.first], train_sketches[p.second], p.label)
        for p in dataset.train
    ]
    history = finetuner.train(pairs)
    print(
        f"fine-tuned on TUS-SANTOS union: loss "
        f"{history.train_losses[0]:.3f} -> {history.train_losses[-1]:.3f}"
    )

    # Index the search corpus with column embeddings and run all systems.
    corpus_sketches = sketch_cache(benchmark.tables, sketch_config)
    systems = [
        TabSketchFMSearcher(
            TableEmbedder(model, encoder), benchmark.tables, corpus_sketches
        ),
        SbertSearcher(benchmark.tables),
        D3lSearcher(benchmark.tables),
        StarmieSearcher(benchmark.tables, epochs=2),
    ]
    rows = [
        evaluate_search(s.name, benchmark, s.retrieve, k=K).row() for s in systems
    ]
    print()
    print(format_table(rows, title=f"SANTOS-style union search @ k={K}"))


if __name__ == "__main__":
    main()
