"""Quickstart: sketch two tables, encode them, score their similarity.

Walks the library's core loop in under a minute:

1. load CSV-like tables,
2. build the paper's sketches (MinHash / numerical / content snapshot),
3. encode them for TabSketchFM,
4. run the untrained encoder and inspect embeddings,
5. fine-tune a tiny cross-encoder on a toy "same domain?" task.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import InputEncoder, TabSketchFM, TabSketchFMConfig
from repro.core.embed import TableEmbedder
from repro.core.finetune import (
    CrossEncoder,
    FinetuneConfig,
    Finetuner,
    PairExample,
    TaskType,
)
from repro.sketch import SketchConfig, sketch_table
from repro.table.csvio import read_csv_text
from repro.text import WordPieceTokenizer

CITIES_CSV = """city,population,founded
vienna,1900000,1156
graz,290000,1128
linz,210000,799
salzburg,155000,696
innsbruck,132000,1180
"""

TOWNS_CSV = """town,inhabitants,established
vienna,1897000,1156
wels,62000,776
steyr,38000,980
dornbirn,50000,895
graz,292000,1128
"""

PRODUCTS_CSV = """product,price,stock
fotomatic pro,129.99,55
dustomatic lite,49.50,210
brewmatic max,220.00,12
scanomatic plus,89.90,80
"""


def main() -> None:
    # 1. Tables ---------------------------------------------------------
    cities = read_csv_text(CITIES_CSV, name="cities")
    towns = read_csv_text(TOWNS_CSV, name="towns")
    products = read_csv_text(PRODUCTS_CSV, name="products")
    print(f"loaded: {cities}, {towns}, {products}")

    # 2. Sketches -------------------------------------------------------
    sketch_config = SketchConfig(num_perm=32, seed=1)
    hasher = sketch_config.build_hasher()  # one hash family for everything
    sketches = {
        t.name: sketch_table(t, sketch_config, hasher)
        for t in (cities, towns, products)
    }
    city_key = sketches["cities"].column_sketches[0]
    town_key = sketches["towns"].column_sketches[0]
    product_key = sketches["products"].column_sketches[0]
    print(
        "\nkey-column MinHash Jaccard estimates:\n"
        f"  cities~towns    {city_key.values_minhash.jaccard(town_key.values_minhash):.2f}"
        f"  (3 of 10 shared cities)\n"
        f"  cities~products {city_key.values_minhash.jaccard(product_key.values_minhash):.2f}"
        f"  (nothing shared)"
    )

    # 3. Model + input encoding -----------------------------------------
    texts = [" ".join(t.header) for t in (cities, towns, products)]
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=300)
    config = TabSketchFMConfig(
        vocab_size=300, dim=32, num_layers=1, num_heads=2, ffn_dim=64,
        dropout=0.0, max_seq_len=64, sketch=sketch_config,
    )
    encoder = InputEncoder(config, tokenizer)
    model = TabSketchFM(config)
    print(f"\nTabSketchFM with {model.num_parameters():,} parameters")

    # 4. Embeddings from the untrained trunk -----------------------------
    embedder = TableEmbedder(model, encoder)
    for name, sketch in sketches.items():
        vector = embedder.table_embedding(sketch)
        print(f"  table embedding {name:10s} -> shape {vector.shape}")

    # 5. Fine-tune a toy cross-encoder -----------------------------------
    pairs = [
        PairExample(sketches["cities"], sketches["towns"], 1),
        PairExample(sketches["towns"], sketches["cities"], 1),
        PairExample(sketches["cities"], sketches["products"], 0),
        PairExample(sketches["products"], sketches["towns"], 0),
    ]
    cross = CrossEncoder(model, TaskType.BINARY, 2, dropout=0.0)
    trainer = Finetuner(
        cross, encoder, FinetuneConfig(epochs=12, batch_size=4, learning_rate=3e-3)
    )
    history = trainer.train(pairs)
    predictions = trainer.predict(pairs)
    print(
        f"\nfine-tuned 'same domain?' cross-encoder: "
        f"loss {history.train_losses[0]:.3f} -> {history.train_losses[-1]:.3f}, "
        f"predictions {predictions.tolist()} (want [1, 1, 0, 0])"
    )


if __name__ == "__main__":
    main()
