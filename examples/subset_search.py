"""Subset search over Eurostat-style variants (the §IV-C3 scenario).

Demonstrates the Fig. 7 protocol: every base CSV spawns 11 subset variants
(row/column sample grid plus full-size shuffles). Searches for the variants
of each base table and probes row/column-order invariance — the property
that separates sketch-based embeddings (set semantics, fully row-order
invariant) from value-sentence embeddings.

Run:  python examples/subset_search.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SbertSearcher
from repro.core import InputEncoder, TabSketchFM, TabSketchFMConfig
from repro.core.embed import TableEmbedder
from repro.core.searcher import TabSketchFMSearcher
from repro.eval.experiments import format_table, sketch_cache
from repro.lakebench import make_eurostat_subset_search
from repro.search.metrics import evaluate_search
from repro.sketch import SketchConfig
from repro.text import WordPieceTokenizer

K = 10


def main() -> None:
    benchmark = make_eurostat_subset_search(scale=0.4)
    print(
        f"benchmark: {len(benchmark.queries)} query CSVs x 11 variants = "
        f"{len(benchmark.tables)} tables"
    )

    sketch_config = SketchConfig(num_perm=32, seed=1)
    sketches = sketch_cache(benchmark.tables, sketch_config)
    texts = [" ".join(t.header) for t in benchmark.tables.values()]
    tokenizer = WordPieceTokenizer.train(texts, vocab_size=800)
    config = TabSketchFMConfig(
        vocab_size=800, dim=32, num_layers=1, num_heads=2, ffn_dim=64,
        dropout=0.0, max_seq_len=96, sketch=sketch_config,
    )
    encoder = InputEncoder(config, tokenizer)
    model = TabSketchFM(config)
    embedder = TableEmbedder(model, encoder)

    systems = [
        TabSketchFMSearcher(embedder, benchmark.tables, sketches),
        SbertSearcher(benchmark.tables),
    ]
    rows = [
        evaluate_search(s.name, benchmark, s.retrieve, k=K).row() for s in systems
    ]
    print()
    print(format_table(rows, title=f"Eurostat subset search @ k={K}"))

    # Invariance probe (§IV-C3): sketches are row-order invariant by
    # construction; SBERT's order-sensitive table embedding is not.
    sbert = systems[1]
    row_invariant = 0
    sbert_invariant = 0
    for query in benchmark.queries:
        base_vec = embedder.table_embedding(sketches[query.table])
        shuffled = f"{query.table}__shuffle_rows"
        row_vec = embedder.table_embedding(sketches[shuffled])
        row_invariant += int(np.allclose(base_vec, row_vec))
        sbert_base = sbert.table_embedding(
            benchmark.tables[query.table], order_sensitive=True
        )
        sbert_row = sbert.table_embedding(
            benchmark.tables[shuffled], order_sensitive=True
        )
        sbert_invariant += int(np.allclose(sbert_base, sbert_row))
    n = len(benchmark.queries)
    print(
        f"\nrow-shuffle invariance: TabSketchFM {row_invariant}/{n} "
        f"(paper: 3072/3072), SBERT {sbert_invariant}/{n} (paper: 91%)"
    )


if __name__ == "__main__":
    main()
